// Concurrency tests of the full controller + staged pipeline under the
// bounded-overlap policy (max_inflight_checkpoints > 1) and under injected
// storage faults. Run in CI both plain and with -fsanitize=thread.
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "core/checknrun.h"
#include "core/recovery.h"
#include "data/synthetic.h"
#include "storage/fault_injection.h"

namespace cnr::core {
namespace {

using namespace std::chrono_literals;

dlrm::ModelConfig SmallModel() {
  dlrm::ModelConfig cfg;
  cfg.num_dense = 4;
  cfg.embedding_dim = 8;
  cfg.table_rows = {256, 128};
  cfg.bottom_hidden = {16};
  cfg.top_hidden = {16};
  cfg.num_shards = 2;
  cfg.seed = 11;
  return cfg;
}

data::DatasetConfig MatchingDataset() {
  data::DatasetConfig cfg;
  cfg.seed = 22;
  cfg.num_dense = 4;
  cfg.tables = {{256, 2, 1.1}, {128, 1, 1.05}};
  return cfg;
}

data::ReaderConfig SmallReader() {
  data::ReaderConfig cfg;
  cfg.batch_size = 16;
  cfg.num_workers = 2;
  cfg.queue_capacity = 4;
  return cfg;
}

CheckNRunConfig BaseConfig() {
  CheckNRunConfig cfg;
  cfg.job = "stress";
  cfg.interval_batches = 3;
  cfg.policy = PolicyKind::kAlwaysFull;
  cfg.quantize = false;
  cfg.chunk_rows = 64;
  cfg.pipeline_threads = 2;
  return cfg;
}

std::uint64_t CkptIdFromKey(const std::string& key) {
  const auto pos = key.find("/ckpt/");
  if (pos == std::string::npos) return 0;
  return std::stoull(key.substr(pos + 6, 12));
}

// Records, for every Put, whether a Put of a *different* checkpoint id was in
// flight at the same moment. Puts of `hold_id` additionally park until either
// that overlap is observed or a timeout passes, so overlap becomes all but
// deterministic when the pipeline allows it — and the timeout keeps strict
// mode from deadlocking the test.
class OverlapProbeStore : public storage::ObjectStore {
 public:
  explicit OverlapProbeStore(std::uint64_t hold_id) : hold_id_(hold_id) {}

  void Put(const std::string& key, std::vector<std::uint8_t> data) override {
    const std::uint64_t id = CkptIdFromKey(key);
    {
      std::unique_lock lock(mu_);
      active_.insert(id);
      if (DistinctActive() >= 2) {
        overlap_observed_ = true;
        cv_.notify_all();
      } else if (id == hold_id_ && !overlap_observed_ && !held_one_) {
        // Park exactly one put — holding more would idle every store worker
        // and stall the very pipeline progress the probe wants to observe.
        held_one_ = true;
        cv_.wait_for(lock, 2s, [&] { return overlap_observed_; });
      }
    }
    inner_.Put(key, std::move(data));
    {
      std::lock_guard lock(mu_);
      active_.erase(active_.find(id));
    }
    cv_.notify_all();
  }
  std::optional<std::vector<std::uint8_t>> Get(const std::string& key) override {
    return inner_.Get(key);
  }
  bool Exists(const std::string& key) override { return inner_.Exists(key); }
  bool Delete(const std::string& key) override { return inner_.Delete(key); }
  std::vector<std::string> List(const std::string& prefix) override {
    return inner_.List(prefix);
  }
  std::uint64_t TotalBytes() override { return inner_.TotalBytes(); }
  storage::StoreStats Stats() override { return inner_.Stats(); }

  bool overlap_observed() const {
    std::lock_guard lock(mu_);
    return overlap_observed_;
  }

 private:
  std::size_t DistinctActive() const {
    std::size_t distinct = 0;
    std::uint64_t prev = ~0ULL;
    for (const auto id : active_) {
      if (id != prev) ++distinct;
      prev = id;
    }
    return distinct;
  }

  storage::InMemoryStore inner_;
  std::uint64_t hold_id_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::multiset<std::uint64_t> active_;
  bool overlap_observed_ = false;
  bool held_one_ = false;
};

// Logs the checkpoint id of every Put in arrival order.
class PutOrderStore : public storage::ObjectStore {
 public:
  void Put(const std::string& key, std::vector<std::uint8_t> data) override {
    inner_.Put(key, std::move(data));
    std::lock_guard lock(mu_);
    put_ids_.push_back(CkptIdFromKey(key));
  }
  std::optional<std::vector<std::uint8_t>> Get(const std::string& key) override {
    return inner_.Get(key);
  }
  bool Exists(const std::string& key) override { return inner_.Exists(key); }
  bool Delete(const std::string& key) override { return inner_.Delete(key); }
  std::vector<std::string> List(const std::string& prefix) override {
    return inner_.List(prefix);
  }
  std::uint64_t TotalBytes() override { return inner_.TotalBytes(); }
  storage::StoreStats Stats() override { return inner_.Stats(); }

  std::vector<std::uint64_t> put_ids() const {
    std::lock_guard lock(mu_);
    return put_ids_;
  }

 private:
  storage::InMemoryStore inner_;
  mutable std::mutex mu_;
  std::vector<std::uint64_t> put_ids_;
};

// Every manifest in the store must describe a complete checkpoint: all its
// chunks and the dense blob present. This is the commit-after-all-chunks
// invariant as seen by recovery.
void ExpectAllManifestsComplete(storage::ObjectStore& store, const std::string& job) {
  for (const auto& key : store.List(storage::Manifest::JobPrefix(job))) {
    if (!key.ends_with("MANIFEST")) continue;
    const auto bytes = store.Get(key);
    ASSERT_TRUE(bytes.has_value());
    const auto m = storage::Manifest::Decode(*bytes);
    EXPECT_TRUE(store.Exists(m.dense_key)) << m.dense_key;
    for (const auto& c : m.chunks) EXPECT_TRUE(store.Exists(c.key)) << c.key;
  }
}

// ---------------------------------------------------------------- overlap ---

TEST(PipelineOverlap, TwoCheckpointWritesProceedConcurrently) {
  // Checkpoint 1's puts park until a put from another checkpoint id arrives;
  // with max_inflight_checkpoints = 2 the trainer submits checkpoint 2 while
  // checkpoint 1 is still storing, satisfying the rendezvous.
  auto store = std::make_shared<OverlapProbeStore>(/*hold_id=*/1);

  dlrm::DlrmModel model(SmallModel());
  data::SyntheticDataset ds(MatchingDataset());
  data::ReaderMaster reader(ds, SmallReader());

  auto cfg = BaseConfig();
  cfg.gc = false;
  cfg.max_inflight_checkpoints = 2;
  CheckNRun cnr(model, reader, store, cfg);
  cnr.Run(3);

  EXPECT_TRUE(store->overlap_observed())
      << "max_inflight_checkpoints=2 never overlapped two checkpoint writes";
  for (std::uint64_t id = 1; id <= 3; ++id) {
    EXPECT_TRUE(store->Exists(storage::Manifest::ManifestKey("stress", id))) << id;
  }
}

TEST(PipelineOverlap, StrictModeNeverInterleavesCheckpointWrites) {
  auto store = std::make_shared<PutOrderStore>();

  dlrm::DlrmModel model(SmallModel());
  data::SyntheticDataset ds(MatchingDataset());
  data::ReaderMaster reader(ds, SmallReader());

  auto cfg = BaseConfig();
  cfg.gc = false;  // deletes would not show in the put log anyway
  CheckNRun cnr(model, reader, store, cfg);
  cnr.Run(4);

  // §4.3: the snapshot (and hence any write) of checkpoint k+1 happens only
  // after checkpoint k fully committed — put ids must be nondecreasing.
  std::uint64_t prev = 0;
  for (const auto id : store->put_ids()) {
    EXPECT_GE(id, prev) << "strict mode interleaved checkpoint writes";
    prev = id;
  }
  EXPECT_EQ(prev, 4u);
}

TEST(PipelineOverlap, OverlappedRunRestoresExactly) {
  // Overlap must not change what gets stored: an overlapped run restores to
  // the same model as the uninterrupted reference.
  data::SyntheticDataset ds(MatchingDataset());

  dlrm::DlrmModel reference(SmallModel());
  {
    data::ReaderMaster reader(ds, SmallReader());
    auto ref_store = std::make_shared<storage::InMemoryStore>();
    CheckNRun cnr(reference, reader, ref_store, BaseConfig());
    cnr.Run(5);
  }

  dlrm::DlrmModel model(SmallModel());
  auto store = std::make_shared<storage::InMemoryStore>();
  {
    data::ReaderMaster reader(ds, SmallReader());
    auto cfg = BaseConfig();
    cfg.max_inflight_checkpoints = 3;
    CheckNRun cnr(model, reader, store, cfg);
    cnr.Run(5);
  }

  dlrm::DlrmModel restored(SmallModel());
  const auto rr = RestoreModel(*store, "stress", restored);
  EXPECT_EQ(rr.checkpoint_id, 5u);
  EXPECT_EQ(rr.batches_trained, 15u);
  EXPECT_TRUE(restored.DenseEquals(reference));
  for (std::size_t t = 0; t < reference.num_tables(); ++t) {
    for (std::size_t s = 0; s < reference.table(t).num_shards(); ++s) {
      EXPECT_EQ(restored.table(t).Shard(s), reference.table(t).Shard(s));
    }
  }
}

// ----------------------------------------------------------------- faults ---

TEST(PipelineStress, OverlappedFlakyRunRecoversToCommittedOnly) {
  storage::FaultConfig fc;
  fc.put_failure_probability = 0.15;
  fc.seed = 13;
  auto flaky =
      std::make_shared<storage::FaultInjectionStore>(std::make_shared<storage::InMemoryStore>(), fc);

  dlrm::DlrmModel model(SmallModel());
  data::SyntheticDataset ds(MatchingDataset());
  data::ReaderMaster reader(ds, SmallReader());

  auto cfg = BaseConfig();
  cfg.policy = PolicyKind::kOneShot;
  cfg.gc = false;
  cfg.max_inflight_checkpoints = 3;
  cfg.put_attempts = 12;  // P(exhaustion) ~ 0.15^12: effectively never
  CheckNRun cnr(model, reader, flaky, cfg);
  cnr.Run(6);

  EXPECT_GT(flaky->injected_put_failures(), 0u) << "fault injection never fired";
  ExpectAllManifestsComplete(*flaky, "stress");

  dlrm::DlrmModel restored(SmallModel());
  const auto rr = RestoreModel(*flaky, "stress", restored);
  EXPECT_EQ(rr.checkpoint_id, 6u);
  EXPECT_EQ(rr.batches_trained, 18u);
  EXPECT_TRUE(restored.DenseEquals(model));
}

TEST(PipelineStress, MidRunStoreDeathLeavesOnlyCompleteCheckpoints) {
  auto inner = std::make_shared<storage::InMemoryStore>();
  auto store = std::make_shared<storage::FaultInjectionStore>(inner, storage::FaultConfig{});

  dlrm::DlrmModel model(SmallModel());
  data::SyntheticDataset ds(MatchingDataset());
  data::ReaderMaster reader(ds, SmallReader());

  auto cfg = BaseConfig();
  cfg.policy = PolicyKind::kOneShot;
  cfg.gc = false;
  cfg.max_inflight_checkpoints = 2;
  CheckNRun cnr(model, reader, store, cfg);
  cnr.Run(2);  // two good checkpoints

  // Storage dies hard; both in-flight intervals' checkpoints must fail...
  storage::FaultConfig dead;
  dead.put_failure_probability = 1.0;
  store->SetConfig(dead);
  // Step() may itself rethrow an already-failed write while reaping, so
  // count failures across both submission and drain.
  std::size_t failures = 0;
  for (int i = 0; i < 2; ++i) {
    try {
      cnr.Step();
    } catch (const storage::StoreUnavailable&) {
      ++failures;
    }
  }
  while (cnr.inflight_checkpoints() > 0) {
    try {
      cnr.Drain();
    } catch (const storage::StoreUnavailable&) {
      ++failures;
    }
  }
  EXPECT_GE(failures, 1u);
  EXPECT_EQ(cnr.inflight_checkpoints(), 0u);

  // ...and recovery must only ever see the two committed checkpoints, each
  // complete.
  store->SetConfig(storage::FaultConfig{});  // heal for reads
  EXPECT_EQ(*LatestCheckpointId(*inner, "stress"), 2u);
  ExpectAllManifestsComplete(*inner, "stress");
  dlrm::DlrmModel restored(SmallModel());
  const auto rr = RestoreModel(*store, "stress", restored);
  EXPECT_EQ(rr.checkpoint_id, 2u);
  EXPECT_EQ(rr.batches_trained, 6u);
}

// Fails every Put belonging to one configured checkpoint id.
class FailOneCheckpointStore : public storage::InMemoryStore {
 public:
  explicit FailOneCheckpointStore(std::uint64_t fail_id) : fail_id_(fail_id) {}
  void Put(const std::string& key, std::vector<std::uint8_t> data) override {
    if (CkptIdFromKey(key) == fail_id_) {
      throw storage::StoreUnavailable("injected failure for checkpoint " +
                                      std::to_string(fail_id_));
    }
    InMemoryStore::Put(key, std::move(data));
  }

 private:
  std::uint64_t fail_id_;
};

TEST(PipelineStress, FailedCheckpointForcesRebaseline) {
  // One-shot never re-baselines on its own; after a failed incremental the
  // policy must fall back to a fresh full checkpoint (and include the rows
  // the failed checkpoint would have carried) instead of planning
  // incrementals over a lineage that can no longer commit.
  auto store = std::make_shared<FailOneCheckpointStore>(/*fail_id=*/2);

  dlrm::DlrmModel model(SmallModel());
  data::SyntheticDataset ds(MatchingDataset());
  data::ReaderMaster reader(ds, SmallReader());

  auto cfg = BaseConfig();
  cfg.policy = PolicyKind::kOneShot;
  cfg.gc = false;
  cfg.put_attempts = 2;
  CheckNRun cnr(model, reader, store, cfg);

  cnr.Step();  // 1: full baseline, commits
  cnr.Step();  // 2: incremental, fails in the background
  EXPECT_THROW(cnr.Drain(), storage::StoreUnavailable);

  cnr.Step();  // 3: must re-baseline and commit
  cnr.Drain();
  ASSERT_EQ(cnr.completed().size(), 2u);
  EXPECT_EQ(cnr.completed().back().checkpoint_id, 3u);
  EXPECT_EQ(cnr.completed().back().kind, storage::CheckpointKind::kFull);

  EXPECT_EQ(*LatestCheckpointId(*store, "stress"), 3u);
  dlrm::DlrmModel restored(SmallModel());
  const auto rr = RestoreModel(*store, "stress", restored);
  EXPECT_EQ(rr.checkpoint_id, 3u);
  EXPECT_EQ(rr.batches_trained, 9u);
  // The fresh baseline carries the full model, so nothing from the failed
  // interval is lost.
  EXPECT_TRUE(restored.DenseEquals(model));
  for (std::size_t t = 0; t < model.num_tables(); ++t) {
    for (std::size_t s = 0; s < model.table(t).num_shards(); ++s) {
      EXPECT_EQ(restored.table(t).Shard(s), model.table(t).Shard(s));
    }
  }
}

TEST(PipelineStress, ManyIntervalsWithOverlapAndGc) {
  // GC runs on the commit thread while later checkpoints stream through the
  // stages; the newest checkpoint must stay restorable throughout.
  auto store = std::make_shared<storage::InMemoryStore>();
  dlrm::DlrmModel model(SmallModel());
  data::SyntheticDataset ds(MatchingDataset());
  data::ReaderMaster reader(ds, SmallReader());

  auto cfg = BaseConfig();
  cfg.policy = PolicyKind::kIntermittent;
  cfg.quantize = false;
  cfg.gc = true;
  cfg.max_inflight_checkpoints = 2;
  cfg.interval_batches = 2;
  CheckNRun cnr(model, reader, store, cfg);
  const auto stats = cnr.Run(10);

  ASSERT_EQ(stats.size(), 10u);
  for (std::size_t i = 0; i < stats.size(); ++i) {
    EXPECT_EQ(stats[i].checkpoint_id, i + 1);
    EXPECT_GT(stats[i].bytes_written, 0u);
  }
  ExpectAllManifestsComplete(*store, "stress");
  dlrm::DlrmModel restored(SmallModel());
  const auto rr = RestoreModel(*store, "stress", restored);
  EXPECT_EQ(rr.checkpoint_id, 10u);
  EXPECT_TRUE(restored.DenseEquals(model));
}

}  // namespace
}  // namespace cnr::core
