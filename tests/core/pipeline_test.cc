#include "core/pipeline/pipeline.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "core/pipeline/executor.h"
#include "storage/object_store.h"

namespace cnr::core::pipeline {
namespace {

using namespace std::chrono_literals;

// ---------------------------------------------------------------- lanes ----

TEST(StageLane, FifoOrderAndEmptyPop) {
  StageLane<int> lane;
  EXPECT_FALSE(lane.TryPop().has_value());
  lane.Push(1);
  lane.Push(2);
  lane.Push(3);
  EXPECT_EQ(lane.size(), 3u);
  EXPECT_EQ(*lane.TryPop(), 1);
  EXPECT_EQ(*lane.TryPop(), 2);
  EXPECT_EQ(*lane.TryPop(), 3);
  EXPECT_FALSE(lane.TryPop().has_value());
}

TEST(StageLane, ConcurrentProducersConsumersDrainExactly) {
  // The hand-off lane between pipeline stages: MPMC, non-blocking pops.
  StageLane<int> lane;
  constexpr int kPerProducer = 1000;
  std::vector<std::thread> producers;
  for (int t = 0; t < 4; ++t) {
    producers.emplace_back([&, t] {
      for (int i = 0; i < kPerProducer; ++i) lane.Push(t * kPerProducer + i);
    });
  }
  std::atomic<int> popped{0};
  std::atomic<long long> sum{0};
  std::vector<std::thread> consumers;
  for (int t = 0; t < 4; ++t) {
    consumers.emplace_back([&] {
      while (popped.load() < 4 * kPerProducer) {
        if (auto v = lane.TryPop()) {
          sum.fetch_add(*v);
          popped.fetch_add(1);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  for (auto& t : consumers) t.join();
  const long long n = 4LL * kPerProducer;
  EXPECT_EQ(popped.load(), n);
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
  EXPECT_EQ(lane.size(), 0u);
}

// ---------------------------------------------------- pipeline test rig ---

// Two shards, 64 rows each, dim 4 — enough for several chunks per shard.
ModelSnapshot MakeSnapshot() {
  ModelSnapshot snap;
  snap.batches_trained = 10;
  snap.samples_trained = 320;
  snap.shards.resize(1);
  for (std::uint32_t s = 0; s < 2; ++s) {
    ShardSnapshot shard;
    shard.table_id = 0;
    shard.shard_id = s;
    shard.num_rows = 64;
    shard.dim = 4;
    shard.weights.resize(shard.num_rows * shard.dim);
    shard.adagrad.resize(shard.num_rows);
    for (std::size_t i = 0; i < shard.weights.size(); ++i) {
      shard.weights[i] = 0.01f * static_cast<float>(i + s);
    }
    for (std::size_t i = 0; i < shard.adagrad.size(); ++i) {
      shard.adagrad[i] = 1.0f + static_cast<float>(i);
    }
    snap.shards[0].push_back(std::move(shard));
  }
  snap.dense_blob = {1, 2, 3, 4, 5, 6, 7, 8};
  return snap;
}

CheckpointRequest MakeRequest(std::uint64_t id) {
  CheckpointRequest req;
  req.checkpoint_id = id;
  req.writer.job = "pipe";
  req.writer.chunk_rows = 16;  // 4 chunks per shard
  req.writer.quant.method = quant::Method::kNone;
  req.plan.kind = storage::CheckpointKind::kFull;
  req.snapshot_fn = [] { return MakeSnapshot(); };
  return req;
}

std::uint64_t CkptIdFromKey(const std::string& key) {
  const auto pos = key.find("/ckpt/");
  if (pos == std::string::npos) return 0;
  return std::stoull(key.substr(pos + 6, 12));
}

// Forwards to an InMemoryStore, logging Put keys in arrival order and
// optionally failing or delaying the puts of selected checkpoint ids.
class RecordingStore : public storage::ObjectStore {
 public:
  void Put(const std::string& key, std::vector<std::uint8_t> data) override {
    const std::uint64_t id = CkptIdFromKey(key);
    {
      std::lock_guard lock(mu_);
      if (fail_ids_.count(id)) {
        throw storage::StoreUnavailable("injected failure for checkpoint " +
                                        std::to_string(id));
      }
    }
    if (slow_ids_.count(id)) std::this_thread::sleep_for(2ms);
    inner_.Put(key, std::move(data));
    std::lock_guard lock(mu_);
    put_keys_.push_back(key);
  }
  std::optional<std::vector<std::uint8_t>> Get(const std::string& key) override {
    return inner_.Get(key);
  }
  bool Exists(const std::string& key) override { return inner_.Exists(key); }
  bool Delete(const std::string& key) override { return inner_.Delete(key); }
  std::vector<std::string> List(const std::string& prefix) override {
    return inner_.List(prefix);
  }
  std::uint64_t TotalBytes() override { return inner_.TotalBytes(); }
  storage::StoreStats Stats() override { return inner_.Stats(); }

  void FailCheckpoint(std::uint64_t id) {
    std::lock_guard lock(mu_);
    fail_ids_.insert(id);
  }
  void SlowCheckpoint(std::uint64_t id) { slow_ids_.insert(id); }  // pre-run only

  std::vector<std::string> put_keys() const {
    std::lock_guard lock(mu_);
    return put_keys_;
  }

 private:
  storage::InMemoryStore inner_;
  mutable std::mutex mu_;
  std::vector<std::string> put_keys_;
  std::set<std::uint64_t> fail_ids_;
  std::set<std::uint64_t> slow_ids_;
};

PipelineConfig SmallPipeline(std::size_t max_inflight = 1) {
  PipelineConfig cfg;
  cfg.encode_threads = 2;
  cfg.store_threads = 2;
  cfg.queue_capacity = 4;
  cfg.max_inflight_checkpoints = max_inflight;
  return cfg;
}

// ------------------------------------------------------------- pipeline ---

TEST(CheckpointPipeline, WritesValidCheckpoint) {
  auto store = std::make_shared<storage::InMemoryStore>();
  CheckpointPipeline pipe(store, SmallPipeline());

  const WriteResult result = pipe.Submit(MakeRequest(1)).get();

  ASSERT_EQ(result.manifest.chunks.size(), 8u);  // 2 shards x 64/16 rows
  EXPECT_EQ(result.rows_written, 128u);
  EXPECT_GT(result.bytes_written, 0u);

  // Valid iff manifest exists; decode it and check every chunk was stored.
  const auto manifest_bytes = store->Get(storage::Manifest::ManifestKey("pipe", 1));
  ASSERT_TRUE(manifest_bytes.has_value());
  const auto m = storage::Manifest::Decode(*manifest_bytes);
  EXPECT_EQ(m.checkpoint_id, 1u);
  EXPECT_EQ(m.batches_trained, 10u);
  for (const auto& c : m.chunks) {
    EXPECT_TRUE(store->Exists(c.key)) << c.key;
    EXPECT_GT(c.bytes, 0u);
  }
  EXPECT_TRUE(store->Exists(m.dense_key));
  EXPECT_EQ(m.dense_bytes, 8u);
  // Stage timings ride in the manifest (format v2).
  EXPECT_EQ(m.timings.encode_us, result.timings.encode_us);
  EXPECT_EQ(m.timings.snapshot_us, result.timings.snapshot_us);
}

TEST(CheckpointPipeline, ManifestIsStoredLast) {
  auto store = std::make_shared<RecordingStore>();
  CheckpointPipeline pipe(store, SmallPipeline());
  pipe.Submit(MakeRequest(1)).get();

  const auto keys = store->put_keys();
  ASSERT_FALSE(keys.empty());
  EXPECT_TRUE(keys.back().ends_with("MANIFEST"))
      << "manifest must be the last object stored, got " << keys.back();
}

TEST(CheckpointPipeline, EmptyIncrementalStillCommits) {
  auto store = std::make_shared<storage::InMemoryStore>();
  CheckpointPipeline pipe(store, SmallPipeline());

  CheckpointRequest req = MakeRequest(2);
  req.plan.kind = storage::CheckpointKind::kIncremental;
  req.plan.parent_id = 1;
  req.plan.rows.resize(1);
  req.plan.rows[0].emplace_back(64);  // all-clear dirty sets
  req.plan.rows[0].emplace_back(64);

  const WriteResult result = pipe.Submit(std::move(req)).get();
  EXPECT_EQ(result.manifest.chunks.size(), 0u);
  EXPECT_EQ(result.rows_written, 0u);
  EXPECT_TRUE(store->Exists(storage::Manifest::ManifestKey("pipe", 2)));
}

TEST(CheckpointPipeline, PostCommitRunsAfterManifestIsValid) {
  auto store = std::make_shared<storage::InMemoryStore>();
  CheckpointPipeline pipe(store, SmallPipeline());
  std::atomic<bool> manifest_present_at_hook{false};
  CheckpointRequest req = MakeRequest(1);
  req.post_commit = [&] {
    manifest_present_at_hook.store(
        store->Exists(storage::Manifest::ManifestKey("pipe", 1)));
  };
  pipe.Submit(std::move(req)).get();
  EXPECT_TRUE(manifest_present_at_hook.load());
}

TEST(CheckpointPipeline, StrictModeGroupsCheckpointWrites) {
  auto store = std::make_shared<RecordingStore>();
  CheckpointPipeline pipe(store, SmallPipeline(/*max_inflight=*/1));
  pipe.Submit(MakeRequest(1));
  pipe.Submit(MakeRequest(2));
  pipe.Submit(MakeRequest(3));
  pipe.WaitIdle();

  // §4.3 non-overlap: once checkpoint k+1 writes anything, checkpoint k is
  // done — put order must be nondecreasing in checkpoint id.
  std::uint64_t prev = 0;
  for (const auto& key : store->put_keys()) {
    const auto id = CkptIdFromKey(key);
    EXPECT_GE(id, prev) << "checkpoint writes interleaved at " << key;
    prev = id;
  }
}

TEST(CheckpointPipeline, OverlappedCommitsLandInSubmissionOrder) {
  auto store = std::make_shared<RecordingStore>();
  store->SlowCheckpoint(1);  // checkpoint 1's puts dawdle; 2 races ahead
  CheckpointPipeline pipe(store, SmallPipeline(/*max_inflight=*/2));
  auto f1 = pipe.Submit(MakeRequest(1));
  auto f2 = pipe.Submit(MakeRequest(2));
  f1.get();
  f2.get();

  const auto keys = store->put_keys();
  std::size_t m1 = keys.size(), m2 = keys.size();
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (!keys[i].ends_with("MANIFEST")) continue;
    if (CkptIdFromKey(keys[i]) == 1) m1 = i;
    if (CkptIdFromKey(keys[i]) == 2) m2 = i;
  }
  ASSERT_LT(m1, keys.size());
  ASSERT_LT(m2, keys.size());
  EXPECT_LT(m1, m2) << "commit order must follow submission order";
}

TEST(CheckpointPipeline, FailedCheckpointIsNeverValidAndSuccessorProceeds) {
  auto store = std::make_shared<RecordingStore>();
  store->FailCheckpoint(1);
  CheckpointPipeline pipe(store, SmallPipeline(/*max_inflight=*/1));

  auto f1 = pipe.Submit(MakeRequest(1));
  EXPECT_THROW(f1.get(), storage::StoreUnavailable);
  EXPECT_FALSE(store->Exists(storage::Manifest::ManifestKey("pipe", 1)));

  // The failure released the overlap slot; an independent (full) checkpoint
  // still goes through.
  auto f2 = pipe.Submit(MakeRequest(2));
  EXPECT_NO_THROW(f2.get());
  EXPECT_TRUE(store->Exists(storage::Manifest::ManifestKey("pipe", 2)));
}

TEST(CheckpointPipeline, InflightParentFailureFailsDependentIncremental) {
  auto store = std::make_shared<RecordingStore>();
  store->FailCheckpoint(1);
  CheckpointPipeline pipe(store, SmallPipeline(/*max_inflight=*/2));

  auto f1 = pipe.Submit(MakeRequest(1));  // full baseline; will fail

  CheckpointRequest inc = MakeRequest(2);  // incremental over the doomed parent
  inc.plan.kind = storage::CheckpointKind::kIncremental;
  inc.plan.parent_id = 1;
  inc.plan.rows.resize(1);
  inc.plan.rows[0].emplace_back(64);
  inc.plan.rows[0].emplace_back(64);
  inc.plan.rows[0][0].Set(3);
  inc.plan.rows[0][1].Set(7);
  auto f2 = pipe.Submit(std::move(inc));

  EXPECT_THROW(f1.get(), storage::StoreUnavailable);
  EXPECT_THROW(f2.get(), std::runtime_error);  // lineage rule
  EXPECT_FALSE(store->Exists(storage::Manifest::ManifestKey("pipe", 2)))
      << "an incremental whose parent failed in flight must not become valid";
}

TEST(CheckpointPipeline, SubmitWithoutSnapshotFnThrows) {
  CheckpointPipeline pipe(std::make_shared<storage::InMemoryStore>(), SmallPipeline());
  CheckpointRequest req;
  req.checkpoint_id = 1;
  EXPECT_THROW(pipe.Submit(std::move(req)), std::invalid_argument);
}

TEST(CheckpointPipeline, InvalidConfigRejected) {
  auto store = std::make_shared<storage::InMemoryStore>();
  PipelineConfig cfg = SmallPipeline();
  cfg.max_inflight_checkpoints = 0;
  EXPECT_THROW(CheckpointPipeline(store, cfg), std::invalid_argument);
  EXPECT_THROW(CheckpointPipeline(nullptr, SmallPipeline()), std::invalid_argument);
}

TEST(CheckpointPipeline, ManyCheckpointsBackToBack) {
  auto store = std::make_shared<storage::InMemoryStore>();
  CheckpointPipeline pipe(store, SmallPipeline(/*max_inflight=*/2));
  std::vector<std::future<WriteResult>> futures;
  for (std::uint64_t id = 1; id <= 8; ++id) futures.push_back(pipe.Submit(MakeRequest(id)));
  for (auto& f : futures) EXPECT_NO_THROW(f.get());
  for (std::uint64_t id = 1; id <= 8; ++id) {
    EXPECT_TRUE(store->Exists(storage::Manifest::ManifestKey("pipe", id))) << id;
  }
}

}  // namespace
}  // namespace cnr::core::pipeline
