#include "core/policy.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace cnr::core {
namespace {

// Hand-built dirty sets over a single 100-row "table/shard".
DirtySets MakeDirty(std::initializer_list<std::size_t> rows) {
  DirtySets sets(1);
  sets[0].emplace_back(100);
  for (const auto r : rows) sets[0][0].Set(r);
  return sets;
}

DirtySets MakeDirtyRange(std::size_t begin, std::size_t end) {
  DirtySets sets(1);
  sets[0].emplace_back(100);
  for (std::size_t r = begin; r < end; ++r) sets[0][0].Set(r);
  return sets;
}

TEST(PolicyNames, AllNamed) {
  EXPECT_EQ(PolicyName(PolicyKind::kAlwaysFull), "always-full");
  EXPECT_EQ(PolicyName(PolicyKind::kOneShot), "one-shot");
  EXPECT_EQ(PolicyName(PolicyKind::kConsecutive), "consecutive");
  EXPECT_EQ(PolicyName(PolicyKind::kIntermittent), "intermittent");
}

TEST(Policy, FirstCheckpointAlwaysFull) {
  for (const auto kind : {PolicyKind::kAlwaysFull, PolicyKind::kOneShot,
                          PolicyKind::kConsecutive, PolicyKind::kIntermittent}) {
    IncrementalPolicy policy(kind, 100);
    const auto plan = policy.Plan(1, MakeDirty({1, 2}));
    EXPECT_EQ(plan.kind, storage::CheckpointKind::kFull) << PolicyName(kind);
    EXPECT_EQ(plan.parent_id, 0u);
  }
}

TEST(Policy, AlwaysFullStaysFull) {
  IncrementalPolicy policy(PolicyKind::kAlwaysFull, 100);
  for (std::uint64_t id = 1; id <= 5; ++id) {
    EXPECT_EQ(policy.Plan(id, MakeDirty({id})).kind, storage::CheckpointKind::kFull);
  }
}

TEST(Policy, IdsMustIncrease) {
  IncrementalPolicy policy(PolicyKind::kOneShot, 100);
  (void)policy.Plan(1, MakeDirty({}));
  (void)policy.Plan(2, MakeDirty({}));
  EXPECT_THROW(policy.Plan(2, MakeDirty({})), std::invalid_argument);
}

TEST(Policy, ZeroRowsThrows) {
  EXPECT_THROW(IncrementalPolicy(PolicyKind::kOneShot, 0), std::invalid_argument);
}

TEST(Policy, OneShotAccumulatesSinceBaseline) {
  IncrementalPolicy policy(PolicyKind::kOneShot, 100);
  (void)policy.Plan(1, MakeDirty({}));  // baseline

  const auto p2 = policy.Plan(2, MakeDirty({1, 2}));
  EXPECT_EQ(p2.kind, storage::CheckpointKind::kIncremental);
  EXPECT_EQ(p2.parent_id, 1u);
  EXPECT_EQ(CountDirtyRows(p2.rows), 2u);

  const auto p3 = policy.Plan(3, MakeDirty({3}));
  EXPECT_EQ(p3.parent_id, 1u);  // still the baseline
  EXPECT_EQ(CountDirtyRows(p3.rows), 3u);  // union {1,2,3}
  EXPECT_TRUE(p3.rows[0][0].Test(1));
  EXPECT_TRUE(p3.rows[0][0].Test(3));

  // Overlapping dirty rows don't double count.
  const auto p4 = policy.Plan(4, MakeDirty({1, 3, 4}));
  EXPECT_EQ(CountDirtyRows(p4.rows), 4u);
}

TEST(Policy, ConsecutiveStoresOnlyLastInterval) {
  IncrementalPolicy policy(PolicyKind::kConsecutive, 100);
  (void)policy.Plan(1, MakeDirty({}));

  const auto p2 = policy.Plan(2, MakeDirty({1, 2}));
  EXPECT_EQ(p2.parent_id, 1u);
  EXPECT_EQ(CountDirtyRows(p2.rows), 2u);

  const auto p3 = policy.Plan(3, MakeDirty({3}));
  EXPECT_EQ(p3.parent_id, 2u);  // chains to the previous checkpoint
  EXPECT_EQ(CountDirtyRows(p3.rows), 1u);
  EXPECT_FALSE(p3.rows[0][0].Test(1));
}

TEST(Policy, RebaselinePredictorRule) {
  // Fc = 1 + sum(S), Ic = (i+1) * S_i.
  // history {0.25}: Fc = 1.25, Ic = 2*0.25 = 0.5 -> no rebaseline.
  EXPECT_FALSE(IncrementalPolicy::ShouldRebaseline({0.25}));
  // history {0.25, 0.4, 0.5}: Fc = 2.15, Ic = 4*0.5 = 2.0 -> keep incremental.
  EXPECT_FALSE(IncrementalPolicy::ShouldRebaseline({0.25, 0.4, 0.5}));
  // history {0.25, 0.4, 0.5, 0.55}: Fc = 2.7, Ic = 5*0.55 = 2.75 -> rebaseline.
  EXPECT_TRUE(IncrementalPolicy::ShouldRebaseline({0.25, 0.4, 0.5, 0.55}));
  EXPECT_FALSE(IncrementalPolicy::ShouldRebaseline({}));
}

TEST(Policy, IntermittentRebaselinesWhenIncrementalsGrow) {
  IncrementalPolicy policy(PolicyKind::kIntermittent, 100);
  (void)policy.Plan(1, MakeDirtyRange(0, 0));  // baseline

  // Feed growing dirty sets (one-shot union grows 25, 35, 45, 52, 58...):
  std::uint64_t id = 2;
  bool rebaselined = false;
  std::size_t hi = 25;
  for (int i = 0; i < 12 && !rebaselined; ++i) {
    const auto plan = policy.Plan(id++, MakeDirtyRange(0, hi));
    hi = std::min<std::size_t>(hi + 8, 100);
    if (plan.kind == storage::CheckpointKind::kFull) rebaselined = true;
  }
  EXPECT_TRUE(rebaselined);

  // After the new baseline, incrementals start small again.
  const auto next = policy.Plan(id++, MakeDirty({1, 2, 3}));
  EXPECT_EQ(next.kind, storage::CheckpointKind::kIncremental);
  EXPECT_EQ(CountDirtyRows(next.rows), 3u);
}

TEST(Policy, IntermittentHistoryResetsOnRebaseline) {
  IncrementalPolicy policy(PolicyKind::kIntermittent, 100);
  (void)policy.Plan(1, MakeDirtyRange(0, 0));
  std::uint64_t id = 2;
  std::size_t hi = 40;
  while (true) {
    const auto plan = policy.Plan(id++, MakeDirtyRange(0, hi));
    hi = std::min<std::size_t>(hi + 15, 100);
    if (plan.kind == storage::CheckpointKind::kFull) break;
    ASSERT_LT(id, 50u) << "predictor never rebaselined";
  }
  EXPECT_TRUE(policy.history().empty());
}

TEST(Policy, OneShotNeverRebaselines) {
  IncrementalPolicy policy(PolicyKind::kOneShot, 100);
  (void)policy.Plan(1, MakeDirtyRange(0, 0));
  for (std::uint64_t id = 2; id < 20; ++id) {
    const auto plan = policy.Plan(id, MakeDirtyRange(0, 90));
    EXPECT_EQ(plan.kind, storage::CheckpointKind::kIncremental);
    EXPECT_EQ(plan.parent_id, 1u);
  }
}

TEST(Policy, EwmaPredictorRule) {
  // Flat history: forecast == last size, same decision as the paper's rule.
  EXPECT_EQ(IncrementalPolicy::ShouldRebaselineEwma({0.3, 0.3, 0.3}, 0.5),
            IncrementalPolicy::ShouldRebaseline({0.3, 0.3, 0.3}));
  // Convex growth: the EWMA forecast exceeds the last size, so the EWMA
  // variant re-baselines no later than the paper's rule.
  const std::vector<double> growing = {0.20, 0.30, 0.42, 0.56};
  if (IncrementalPolicy::ShouldRebaseline(growing)) {
    EXPECT_TRUE(IncrementalPolicy::ShouldRebaselineEwma(growing, 0.5));
  }
  EXPECT_FALSE(IncrementalPolicy::ShouldRebaselineEwma({}, 0.5));
}

TEST(Policy, EwmaOptionValidated) {
  PolicyOptions bad;
  bad.ewma_alpha = 0.0;
  EXPECT_THROW(IncrementalPolicy(PolicyKind::kIntermittent, 100, bad), std::invalid_argument);
  bad.ewma_alpha = 1.5;
  EXPECT_THROW(IncrementalPolicy(PolicyKind::kIntermittent, 100, bad), std::invalid_argument);
}

TEST(Policy, EwmaIntermittentRebaselinesEarlierOnConvexGrowth) {
  PolicyOptions ewma;
  ewma.ewma_predictor = true;
  ewma.ewma_alpha = 0.7;
  IncrementalPolicy paper(PolicyKind::kIntermittent, 100);
  IncrementalPolicy smoothed(PolicyKind::kIntermittent, 100, ewma);

  // Convex (accelerating) growth of the incremental view.
  auto feed = [](IncrementalPolicy& p) {
    (void)p.Plan(1, MakeDirtyRange(0, 0));
    std::size_t hi = 10;
    std::size_t growth = 6;
    for (std::uint64_t id = 2; id < 30; ++id) {
      const auto plan = p.Plan(id, MakeDirtyRange(0, std::min<std::size_t>(hi, 100)));
      if (plan.kind == storage::CheckpointKind::kFull) return id;
      hi += growth;
      growth += 3;
    }
    return std::uint64_t{0};
  };
  const auto paper_at = feed(paper);
  const auto ewma_at = feed(smoothed);
  ASSERT_NE(paper_at, 0u);
  ASSERT_NE(ewma_at, 0u);
  EXPECT_LE(ewma_at, paper_at);
}

TEST(Policy, HistoryTracksFractions) {
  IncrementalPolicy policy(PolicyKind::kOneShot, 100);
  (void)policy.Plan(1, MakeDirty({}));
  (void)policy.Plan(2, MakeDirtyRange(0, 25));
  (void)policy.Plan(3, MakeDirtyRange(0, 40));
  ASSERT_EQ(policy.history().size(), 2u);
  EXPECT_DOUBLE_EQ(policy.history()[0], 0.25);
  EXPECT_DOUBLE_EQ(policy.history()[1], 0.40);
}

}  // namespace
}  // namespace cnr::core
