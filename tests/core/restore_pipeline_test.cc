// Staged restore pipeline (core/pipeline/restore.h): parity with the
// synchronous facade, chain-order apply, and fault behavior mid-restore.
// Runs in the TSan CI job — the fetch/decode/apply workers and the feeder's
// admission gate are the concurrency under test.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/pipeline/chunk_codec.h"
#include "core/pipeline/restore.h"
#include "core/recovery.h"
#include "core/tracking.h"
#include "core/writer.h"
#include "data/synthetic.h"
#include "storage/fault_injection.h"

namespace cnr::core {
namespace {

dlrm::ModelConfig SmallModel() {
  dlrm::ModelConfig cfg;
  cfg.num_dense = 4;
  cfg.embedding_dim = 8;
  cfg.table_rows = {128, 64};
  cfg.bottom_hidden = {16};
  cfg.top_hidden = {16};
  cfg.num_shards = 2;
  cfg.seed = 5;
  return cfg;
}

data::DatasetConfig MatchingDataset() {
  data::DatasetConfig cfg;
  cfg.seed = 6;
  cfg.num_dense = 4;
  cfg.tables = {{128, 2, 1.1}, {64, 1, 1.05}};
  return cfg;
}

WriterConfig PlainWriter() {
  WriterConfig cfg;
  cfg.job = "test";
  cfg.chunk_rows = 16;
  cfg.quant.method = quant::Method::kNone;
  return cfg;
}

data::ReaderState SomeReaderState() {
  data::ReaderState rs;
  rs.next_batch_id = 9;
  rs.next_sample = 9 * 32;
  return rs;
}

void ExpectModelsEqual(const dlrm::DlrmModel& a, const dlrm::DlrmModel& b) {
  // StateEquals is the authoritative parity predicate; the per-shard loop
  // only localizes a failure for the test log.
  EXPECT_TRUE(a.StateEquals(b));
  for (std::size_t t = 0; t < a.num_tables(); ++t) {
    for (std::size_t s = 0; s < a.table(t).num_shards(); ++s) {
      EXPECT_EQ(a.table(t).Shard(s), b.table(t).Shard(s)) << "table " << t << " shard " << s;
    }
  }
}

// Writes a full baseline (id 1) + `incrementals` consecutive incrementals
// into `store`, training between checkpoints. Returns the trained model.
dlrm::DlrmModel WriteChain(storage::ObjectStore& store, const WriterConfig& base_cfg,
                           int incrementals,
                           const std::vector<WriterConfig>* per_ckpt_cfg = nullptr) {
  dlrm::DlrmModel model(SmallModel());
  data::SyntheticDataset ds(MatchingDataset());
  ModifiedRowTracker tracker(model);
  for (std::uint64_t id = 1; id <= 1 + static_cast<std::uint64_t>(incrementals); ++id) {
    for (int b = 0; b < 3; ++b) {
      const auto g = (id - 1) * 3 + b;
      model.TrainBatch(ds.GetBatch(g, g * 32ull, 32));
    }
    CheckpointPlan plan;
    if (id == 1) {
      plan.kind = storage::CheckpointKind::kFull;
      (void)tracker.HarvestInterval();
    } else {
      plan.kind = storage::CheckpointKind::kIncremental;
      plan.parent_id = id - 1;
      plan.rows = tracker.HarvestInterval();
    }
    const WriterConfig& cfg = per_ckpt_cfg ? (*per_ckpt_cfg)[id - 1] : base_cfg;
    const ModelSnapshot snap = CreateSnapshot(model, id * 3, id * 96, nullptr);
    WriteCheckpoint(store, snap, plan, cfg, id, SomeReaderState().Encode(), nullptr);
  }
  return model;
}

TEST(RestorePipeline, MatchesFacadeOnChain) {
  storage::InMemoryStore store;
  const dlrm::DlrmModel model = WriteChain(store, PlainWriter(), 3);

  dlrm::DlrmModel facade(SmallModel());
  const auto fr = RestoreModel(store, "test", facade);
  dlrm::DlrmModel pipelined(SmallModel());
  const auto pr = RestoreModelPipelined(store, "test", pipelined);

  ExpectModelsEqual(model, facade);
  ExpectModelsEqual(facade, pipelined);
  EXPECT_EQ(pr.checkpoint_id, fr.checkpoint_id);
  EXPECT_EQ(pr.checkpoints_applied, 4u);
  EXPECT_EQ(pr.rows_applied, fr.rows_applied);
  EXPECT_EQ(pr.bytes_read, fr.bytes_read);
  EXPECT_EQ(pr.batches_trained, fr.batches_trained);
  EXPECT_EQ(pr.samples_trained, fr.samples_trained);
  EXPECT_EQ(pr.reader_state, fr.reader_state);
  EXPECT_GT(pr.timings.restore_wall_us, 0u);
}

TEST(RestorePipeline, MixedQuantChainUsesPerManifestConfig) {
  // Baseline at 4 bits, incrementals at 8 (the §6.2.1 fallback scenario);
  // each decode must use its own manifest's quant config.
  std::vector<WriterConfig> cfgs(4, PlainWriter());
  cfgs[0].quant.method = quant::Method::kAsymmetric;
  cfgs[0].quant.bits = 4;
  for (int i = 1; i < 4; ++i) {
    cfgs[i].quant.method = quant::Method::kAsymmetric;
    cfgs[i].quant.bits = 8;
  }
  storage::InMemoryStore store;
  WriteChain(store, PlainWriter(), 3, &cfgs);

  dlrm::DlrmModel facade(SmallModel());
  RestoreModel(store, "test", facade);
  dlrm::DlrmModel pipelined(SmallModel());
  RestoreModelPipelined(store, "test", pipelined);
  ExpectModelsEqual(facade, pipelined);
}

TEST(RestorePipeline, ChainOrderHoldsUnderTinyQueuesAndManyWorkers) {
  // Capacity-1 queues + more workers than chunks maximize reordering inside
  // each stage; cross-checkpoint apply order must still hold (newer rows win).
  storage::InMemoryStore store;
  const dlrm::DlrmModel model = WriteChain(store, PlainWriter(), 3);

  pipeline::RestoreConfig cfg;
  cfg.fetch_threads = 4;
  cfg.decode_threads = 4;
  cfg.queue_capacity = 1;
  for (const std::size_t inflight : {1u, 2u, 8u}) {
    cfg.max_inflight_checkpoints = inflight;
    dlrm::DlrmModel restored(SmallModel());
    RestoreModelPipelined(store, "test", restored, {}, cfg);
    ExpectModelsEqual(model, restored);
  }
}

TEST(RestorePipeline, EmptyIncrementalInChain) {
  // An interval with no dirty rows produces a chunk-less checkpoint; the
  // apply stage must advance past it instead of waiting forever.
  storage::InMemoryStore store;
  dlrm::DlrmModel model(SmallModel());
  data::SyntheticDataset ds(MatchingDataset());
  ModifiedRowTracker tracker(model);

  for (int b = 0; b < 3; ++b) model.TrainBatch(ds.GetBatch(b, b * 32ull, 32));
  (void)tracker.HarvestInterval();
  {
    CheckpointPlan plan;
    plan.kind = storage::CheckpointKind::kFull;
    const ModelSnapshot snap = CreateSnapshot(model, 3, 96, nullptr);
    WriteCheckpoint(store, snap, plan, PlainWriter(), 1, SomeReaderState().Encode(), nullptr);
  }
  {
    // No training in interval 2: empty dirty sets, zero chunks.
    CheckpointPlan plan;
    plan.kind = storage::CheckpointKind::kIncremental;
    plan.parent_id = 1;
    plan.rows = tracker.HarvestInterval();
    const ModelSnapshot snap = CreateSnapshot(model, 3, 96, nullptr);
    WriteCheckpoint(store, snap, plan, PlainWriter(), 2, SomeReaderState().Encode(), nullptr);
  }
  {
    for (int b = 3; b < 6; ++b) model.TrainBatch(ds.GetBatch(b, b * 32ull, 32));
    CheckpointPlan plan;
    plan.kind = storage::CheckpointKind::kIncremental;
    plan.parent_id = 2;
    plan.rows = tracker.HarvestInterval();
    const ModelSnapshot snap = CreateSnapshot(model, 6, 192, nullptr);
    WriteCheckpoint(store, snap, plan, PlainWriter(), 3, SomeReaderState().Encode(), nullptr);
  }

  dlrm::DlrmModel restored(SmallModel());
  const auto rr = RestoreModelPipelined(store, "test", restored);
  EXPECT_EQ(rr.checkpoints_applied, 3u);
  ExpectModelsEqual(model, restored);
}

TEST(RestorePipeline, TransientFetchFailuresAreRetried) {
  // Chain written cleanly, then the storage tier turns flaky for reads:
  // ~20% of Gets throw StoreUnavailable. The pipeline's RetryingStore must
  // absorb them (P(8 consecutive failures) = 0.2^8 ~ 2.6e-6 per Get).
  auto inner = std::make_shared<storage::InMemoryStore>();
  const dlrm::DlrmModel model = WriteChain(*inner, PlainWriter(), 3);

  storage::FaultConfig fc;
  fc.get_failure_probability = 0.2;
  fc.seed = 11;
  storage::FaultInjectionStore flaky(inner, fc);

  pipeline::RestoreConfig cfg;
  cfg.get_attempts = 8;
  dlrm::DlrmModel restored(SmallModel());
  const auto rr = RestoreModelPipelined(flaky, "test", restored, {}, cfg);
  EXPECT_GT(flaky.injected_get_failures(), 0u) << "fault injection never fired";
  EXPECT_EQ(rr.checkpoints_applied, 4u);
  ExpectModelsEqual(model, restored);
}

TEST(RestorePipeline, PersistentFetchFailureFailsRestore) {
  // Storage tier down hard: retries exhaust, the pipeline shuts its stages
  // down and rethrows instead of hanging.
  auto inner = std::make_shared<storage::InMemoryStore>();
  WriteChain(*inner, PlainWriter(), 3);

  storage::FaultConfig fc;
  fc.get_failure_probability = 1.0;
  storage::FaultInjectionStore dead(inner, fc);

  dlrm::DlrmModel restored(SmallModel());
  EXPECT_THROW(RestoreModelPipelined(dead, "test", restored), storage::StoreUnavailable);
}

TEST(RestorePipeline, CorruptChunkPoisonsRestore) {
  // Bit rot in a mid-chain chunk: the decode stage's CRC check must fail the
  // whole restore (never silently restore garbage), and the poison must
  // drain the other stages cleanly.
  storage::InMemoryStore store;
  WriteChain(store, PlainWriter(), 3);

  const auto mid = LoadManifest(store, "test", 2);
  ASSERT_FALSE(mid.chunks.empty());
  auto blob = *store.Get(mid.chunks[0].key);
  blob[blob.size() / 2] ^= 0x01;
  store.Put(mid.chunks[0].key, std::move(blob));

  dlrm::DlrmModel restored(SmallModel());
  try {
    RestoreModelPipelined(store, "test", restored);
    FAIL() << "corruption not detected";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos) << e.what();
  }
}

TEST(RestorePipeline, MissingChunkFailsRestore) {
  storage::InMemoryStore store;
  WriteChain(store, PlainWriter(), 3);
  const auto baseline = LoadManifest(store, "test", 1);
  ASSERT_FALSE(baseline.chunks.empty());
  store.Delete(baseline.chunks[0].key);

  dlrm::DlrmModel restored(SmallModel());
  EXPECT_THROW(RestoreModelPipelined(store, "test", restored), std::runtime_error);
}

TEST(RestorePipeline, RestoreWithNoCheckpointsThrows) {
  storage::InMemoryStore store;
  dlrm::DlrmModel model(SmallModel());
  EXPECT_THROW(RestoreModelPipelined(store, "test", model), std::runtime_error);
}

TEST(RestorePipeline, ChunkCodecRoundTrips) {
  // The read direction of the codec: EncodeChunkTask -> DecodeChunkBlob is
  // lossless for unquantized rows, field by field.
  dlrm::DlrmModel model(SmallModel());
  data::SyntheticDataset ds(MatchingDataset());
  for (int b = 0; b < 4; ++b) model.TrainBatch(ds.GetBatch(b, b * 32ull, 32));
  const ModelSnapshot snap = CreateSnapshot(model, 4, 128, nullptr);

  CheckpointPlan plan;
  plan.kind = storage::CheckpointKind::kFull;
  const auto tasks = pipeline::BuildChunkTasks(snap, plan, 16);
  ASSERT_FALSE(tasks.empty());

  quant::QuantConfig qc;
  qc.method = quant::Method::kNone;
  util::Rng rng(7);
  for (const auto& task : tasks) {
    const auto bytes = pipeline::EncodeChunkTask(task, qc, rng);
    const auto chunk = pipeline::DecodeChunkBlob(bytes, qc, "roundtrip");
    EXPECT_EQ(chunk.table_id, task.shard->table_id);
    EXPECT_EQ(chunk.shard_id, task.shard->shard_id);
    EXPECT_EQ(chunk.num_rows, task.NumRows());
    EXPECT_EQ(chunk.dim, task.shard->dim);
    ASSERT_EQ(chunk.weights.size(), task.NumRows() * task.shard->dim);
    for (std::size_t i = 0; i < task.NumRows(); ++i) {
      const std::size_t src = task.explicit_indices ? task.rows[i] : task.start_row + i;
      EXPECT_EQ(chunk.RowIndex(i), src);
      EXPECT_EQ(chunk.adagrad[i], task.shard->adagrad[src]);
      for (std::size_t d = 0; d < chunk.dim; ++d) {
        EXPECT_EQ(chunk.Row(i)[d], task.shard->Row(src)[d]);
      }
    }
  }
}

TEST(RestorePipeline, DrillApplierSeesEveryChunkInChainOrder) {
  // A ChunkApplier observes chunks grouped by chain position, oldest
  // checkpoint first — the invariant cnr_inspect's drill and any future
  // appliers (e.g. a serving replica) rely on.
  storage::InMemoryStore store;
  WriteChain(store, PlainWriter(), 3);

  struct OrderApplier : pipeline::ChunkApplier {
    std::vector<std::uint64_t> rows_per_call;
    bool saw_incremental = false;  // incremental chunks use explicit indices
    bool dense_applied = false;
    void ApplyChunk(const pipeline::DecodedChunk& chunk) override {
      ASSERT_FALSE(dense_applied) << "chunk after dense";
      // Chain order: every baseline (contiguous) chunk applies before any
      // incremental (explicit-index) chunk.
      if (chunk.explicit_indices) {
        saw_incremental = true;
      } else {
        ASSERT_FALSE(saw_incremental) << "baseline chunk after incremental chunk";
      }
      rows_per_call.push_back(chunk.num_rows);
    }
    void ApplyDense(std::span<const std::uint8_t> dense_blob) override {
      dense_applied = true;
      EXPECT_FALSE(dense_blob.empty());
    }
  };

  OrderApplier applier;
  pipeline::RestoreConfig cfg;
  cfg.fetch_threads = 4;
  cfg.decode_threads = 4;
  cfg.queue_capacity = 2;
  const auto out = pipeline::RunRestorePipeline(store, "test", 4, applier, cfg);
  EXPECT_TRUE(applier.dense_applied);
  EXPECT_EQ(out.chain, (std::vector<std::uint64_t>{1, 2, 3, 4}));
  std::uint64_t total = 0;
  for (const auto r : applier.rows_per_call) total += r;
  EXPECT_EQ(total, out.rows_applied);
  EXPECT_EQ(out.newest.checkpoint_id, 4u);
}

// ------------------------------------------------------------------ scrub ---

TEST(ScrubChain, CleanChainReportsNoIssues) {
  storage::InMemoryStore store;
  WriteChain(store, PlainWriter(), 3);

  const auto report = pipeline::ScrubChain(store, "test", 4);
  EXPECT_TRUE(report.clean()) << (report.issues.empty() ? "" : report.issues[0].what);
  EXPECT_EQ(report.chain, (std::vector<std::uint64_t>{1, 2, 3, 4}));
  EXPECT_GT(report.chunks_checked, 0u);
  EXPECT_GT(report.rows_checked, 0u);
  EXPECT_GT(report.bytes_checked, 0u);
}

TEST(ScrubChain, DetectsBitRotSizeDriftAndMissingDense) {
  storage::InMemoryStore store;
  WriteChain(store, PlainWriter(), 3);

  // Bit rot in a mid-chain chunk: the CRC cross-check must flag it.
  const auto mid = LoadManifest(store, "test", 2);
  ASSERT_FALSE(mid.chunks.empty());
  auto blob = *store.Get(mid.chunks[0].key);
  blob[blob.size() / 2] ^= 0x01;
  store.Put(mid.chunks[0].key, std::move(blob));

  // A truncated chunk elsewhere: size + CRC both drift.
  const auto base = LoadManifest(store, "test", 1);
  auto short_blob = *store.Get(base.chunks[0].key);
  short_blob.pop_back();
  store.Put(base.chunks[0].key, std::move(short_blob));

  // And the newest dense blob goes missing entirely.
  const auto newest = LoadManifest(store, "test", 4);
  store.Delete(newest.dense_key);

  const auto report = pipeline::ScrubChain(store, "test", 4);
  EXPECT_FALSE(report.clean());
  EXPECT_GE(report.issues.size(), 3u);
  auto has_issue = [&](const std::string& key, const std::string& what_substr) {
    for (const auto& issue : report.issues) {
      if (issue.key == key && issue.what.find(what_substr) != std::string::npos) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_issue(mid.chunks[0].key, "checksum"));
  EXPECT_TRUE(has_issue(base.chunks[0].key, "size"));
  EXPECT_TRUE(has_issue(newest.dense_key, "missing"));

  // A scrub never repairs or applies anything: the store is untouched.
  EXPECT_FALSE(store.Exists(newest.dense_key));
}

TEST(ScrubChain, UnresolvableChainIsOneChainLevelIssue) {
  storage::InMemoryStore store;
  WriteChain(store, PlainWriter(), 3);
  store.Delete(storage::Manifest::ManifestKey("test", 2));  // hole mid-chain

  const auto report = pipeline::ScrubChain(store, "test", 4);
  ASSERT_EQ(report.issues.size(), 1u);
  EXPECT_EQ(report.issues[0].key, "");
  EXPECT_NE(report.issues[0].what.find("chain unresolvable"), std::string::npos);
}

}  // namespace
}  // namespace cnr::core
