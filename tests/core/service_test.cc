// Multi-job tests of core::CheckpointService: N jobs sharing one engine with
// per-job in-order commits, weighted round-robin chunk scheduling (a large
// full checkpoint cannot starve a small job's incrementals), pre-commit
// admission-slot release, per-job lineage, occupancy accounting, and
// shutdown draining every job. Run in CI both plain and with
// -fsanitize=thread.
#include "core/service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "storage/latency_store.h"
#include "storage/object_store.h"

namespace cnr::core {
namespace {

using namespace std::chrono_literals;

// Snapshot with `rows` rows per shard across two shards of one table; with
// chunk_rows = 16 that is rows/8 chunks per checkpoint.
ModelSnapshot MakeSnapshot(std::size_t rows = 64) {
  ModelSnapshot snap;
  snap.batches_trained = 10;
  snap.samples_trained = 320;
  snap.shards.resize(1);
  for (std::uint32_t s = 0; s < 2; ++s) {
    ShardSnapshot shard;
    shard.table_id = 0;
    shard.shard_id = s;
    shard.num_rows = rows;
    shard.dim = 4;
    shard.weights.resize(shard.num_rows * shard.dim);
    shard.adagrad.resize(shard.num_rows);
    for (std::size_t i = 0; i < shard.weights.size(); ++i) {
      shard.weights[i] = 0.01f * static_cast<float>(i + s);
    }
    for (std::size_t i = 0; i < shard.adagrad.size(); ++i) {
      shard.adagrad[i] = 1.0f + static_cast<float>(i);
    }
    snap.shards[0].push_back(std::move(shard));
  }
  snap.dense_blob = {1, 2, 3, 4, 5, 6, 7, 8};
  return snap;
}

CheckpointRequest MakeRequest(const std::string& job, std::uint64_t id,
                              std::size_t rows = 64) {
  CheckpointRequest req;
  req.checkpoint_id = id;
  req.writer.job = job;
  req.writer.chunk_rows = 16;
  req.writer.quant.method = quant::Method::kNone;
  req.plan.kind = storage::CheckpointKind::kFull;
  req.snapshot_fn = [rows] { return MakeSnapshot(rows); };
  return req;
}

JobConfig RawJob(const std::string& name, std::size_t cap = 1, std::uint32_t weight = 1) {
  JobConfig job;
  job.name = name;
  job.weight = weight;
  job.max_inflight_checkpoints = cap;
  job.gc = false;
  return job;
}

ServiceConfig SmallService() {
  ServiceConfig cfg;
  cfg.encode_threads = 2;
  cfg.store_threads = 2;
  cfg.queue_capacity = 4;
  cfg.max_inflight_checkpoints = 8;
  return cfg;
}

std::string JobOfKey(const std::string& key) {
  if (!key.starts_with("jobs/")) return "";
  return key.substr(5, key.find('/', 5) - 5);
}

// Forwards to an InMemoryStore, logging Put keys in arrival order and
// optionally failing the puts of selected (job, checkpoint) pairs.
class RecordingStore : public storage::ObjectStore {
 public:
  void Put(const std::string& key, std::vector<std::uint8_t> data) override {
    {
      std::lock_guard lock(mu_);
      for (const auto& prefix : fail_prefixes_) {
        if (key.starts_with(prefix)) {
          throw storage::StoreUnavailable("injected failure for " + key);
        }
      }
    }
    inner_.Put(key, std::move(data));
    std::lock_guard lock(mu_);
    put_keys_.push_back(key);
  }
  std::optional<std::vector<std::uint8_t>> Get(const std::string& key) override {
    return inner_.Get(key);
  }
  bool Exists(const std::string& key) override { return inner_.Exists(key); }
  bool Delete(const std::string& key) override { return inner_.Delete(key); }
  std::vector<std::string> List(const std::string& prefix) override {
    return inner_.List(prefix);
  }
  std::uint64_t TotalBytes() override { return inner_.TotalBytes(); }
  storage::StoreStats Stats() override { return inner_.Stats(); }

  void FailCheckpoint(const std::string& job, std::uint64_t id) {
    std::lock_guard lock(mu_);
    fail_prefixes_.push_back(storage::Manifest::CheckpointPrefix(job, id));
  }
  std::vector<std::string> put_keys() const {
    std::lock_guard lock(mu_);
    return put_keys_;
  }

 private:
  storage::InMemoryStore inner_;
  mutable std::mutex mu_;
  std::vector<std::string> put_keys_;
  std::vector<std::string> fail_prefixes_;
};

void ExpectManifestComplete(storage::ObjectStore& store, const std::string& job,
                            std::uint64_t id) {
  const auto bytes = store.Get(storage::Manifest::ManifestKey(job, id));
  ASSERT_TRUE(bytes.has_value()) << job << "/" << id;
  const auto m = storage::Manifest::Decode(*bytes);
  EXPECT_TRUE(store.Exists(m.dense_key)) << m.dense_key;
  for (const auto& c : m.chunks) EXPECT_TRUE(store.Exists(c.key)) << c.key;
}

// ------------------------------------------------------------- open/close ---

TEST(CheckpointService, OpenJobValidation) {
  auto store = std::make_shared<storage::InMemoryStore>();
  EXPECT_THROW(CheckpointService(nullptr, SmallService()), std::invalid_argument);
  {
    ServiceConfig bad = SmallService();
    bad.max_inflight_checkpoints = 0;
    EXPECT_THROW(CheckpointService(store, bad), std::invalid_argument);
  }

  CheckpointService service(store, SmallService());
  auto a = service.OpenJob(RawJob("a"));
  EXPECT_THROW(service.OpenJob(RawJob("a")), std::invalid_argument)
      << "a job name may have only one open handle";
  EXPECT_THROW(service.OpenJob(RawJob("b", /*cap=*/0)), std::invalid_argument);

  a.reset();  // close: the name becomes reusable
  EXPECT_NO_THROW(service.OpenJob(RawJob("a")));
}

// ------------------------------------------------------ multi-job commits ---

TEST(CheckpointService, ThreeJobsCommitInPerJobSubmissionOrder) {
  auto store = std::make_shared<RecordingStore>();
  CheckpointService service(store, SmallService());

  const std::vector<std::string> names = {"alpha", "beta", "gamma"};
  std::vector<std::unique_ptr<JobHandle>> handles;
  for (const auto& name : names) handles.push_back(service.OpenJob(RawJob(name, /*cap=*/2)));

  // Interleave submissions from three trainer threads, one per job.
  std::vector<std::thread> trainers;
  std::mutex futures_mu;
  std::vector<std::future<WriteResult>> futures;
  for (std::size_t j = 0; j < handles.size(); ++j) {
    trainers.emplace_back([&, j] {
      for (std::uint64_t id = 1; id <= 4; ++id) {
        auto f = handles[j]->SubmitRaw(MakeRequest(names[j], id));
        std::lock_guard lock(futures_mu);
        futures.push_back(std::move(f));
      }
    });
  }
  for (auto& t : trainers) t.join();
  for (auto& f : futures) EXPECT_NO_THROW(f.get());

  // Per-job commit (manifest-put) order must equal per-job submission order;
  // cross-job interleaving is free.
  std::map<std::string, std::uint64_t> last_committed;
  for (const auto& key : store->put_keys()) {
    if (!key.ends_with("MANIFEST")) continue;
    const auto job = JobOfKey(key);
    const auto id = std::stoull(key.substr(key.find("/ckpt/") + 6, 12));
    EXPECT_EQ(id, last_committed[job] + 1) << "job " << job << " committed out of order";
    last_committed[job] = id;
  }
  for (std::size_t j = 0; j < names.size(); ++j) {
    EXPECT_EQ(last_committed[names[j]], 4u);
    for (std::uint64_t id = 1; id <= 4; ++id) ExpectManifestComplete(*store, names[j], id);
    EXPECT_EQ(handles[j]->stats().committed, 4u);
  }
}

// ---------------------------------------------------------------- fairness --

TEST(CheckpointService, WeightedSchedulingBoundsSmallJobLatency) {
  // Three concurrent jobs on one service, one store worker over a
  // 200 us/put link — the link is the bottleneck. A large job streams one
  // full checkpoint of 256 chunks (~51 ms of link time); two small,
  // latency-sensitive jobs each submit 6 tiny checkpoints from their own
  // trainer threads. Weighted round-robin (small:4, large:1) must
  // interleave the small jobs' chunks into the large stream, keeping every
  // small submit-to-commit latency far below the large checkpoint's wall.
  auto inner = std::make_shared<storage::InMemoryStore>();
  auto store = std::make_shared<storage::LatencyInjectedStore>(
      inner, /*get_latency=*/0us, /*put_latency=*/200us);

  ServiceConfig cfg;
  cfg.encode_threads = 2;
  cfg.store_threads = 1;  // serialize the link: scheduling decides who goes
  cfg.queue_capacity = 4;
  cfg.max_inflight_checkpoints = 4;
  CheckpointService service(store, cfg);

  auto large = service.OpenJob(RawJob("large", /*cap=*/1, /*weight=*/1));
  std::vector<std::unique_ptr<JobHandle>> smalls;
  smalls.push_back(service.OpenJob(RawJob("small0", /*cap=*/1, /*weight=*/4)));
  smalls.push_back(service.OpenJob(RawJob("small1", /*cap=*/1, /*weight=*/4)));

  // 2 shards x 2048 rows / 16 rows per chunk = 256 chunks.
  auto large_future = large->SubmitRaw(MakeRequest("large", 1, /*rows=*/2048));

  constexpr std::uint64_t kSmallCkpts = 6;
  std::mutex mu;
  std::vector<std::chrono::microseconds> latencies;
  bool all_before_large = true;
  std::vector<std::thread> trainers;
  for (std::size_t j = 0; j < smalls.size(); ++j) {
    trainers.emplace_back([&, j] {
      const std::string name = "small" + std::to_string(j);
      for (std::uint64_t id = 1; id <= kSmallCkpts; ++id) {
        const auto t0 = std::chrono::steady_clock::now();
        auto f = smalls[j]->SubmitRaw(MakeRequest(name, id, /*rows=*/16));  // 2 chunks
        f.wait();
        const auto lat = std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0);
        EXPECT_NO_THROW(f.get());
        // mu also serializes the two trainers' peeks at large_future (a
        // future is not safe for concurrent access).
        std::lock_guard lock(mu);
        latencies.push_back(lat);
        all_before_large &=
            large_future.wait_for(std::chrono::seconds(0)) != std::future_status::ready;
      }
    });
  }
  for (auto& t : trainers) t.join();

  const WriteResult large_result = large_future.get();
  ASSERT_EQ(large_result.manifest.chunks.size(), 256u);

  // Every small checkpoint committed while the large one was still
  // streaming: neither small job was ever starved behind the big backlog.
  EXPECT_TRUE(all_before_large)
      << "a small job had to wait for the large checkpoint to finish";

  // p99 (= max of 12) submit-to-commit latency stays a small fraction of
  // the large checkpoint's wall. Without fair scheduling the first small
  // checkpoint would queue behind ~256 chunks and pay the whole large wall.
  const auto worst = *std::max_element(latencies.begin(), latencies.end());
  EXPECT_LT(worst.count(), large_result.write_wall.count() / 2)
      << "small-job p99 " << worst.count() << " us vs large wall "
      << large_result.write_wall.count() << " us";

  ExpectManifestComplete(*store, "large", 1);
  for (std::uint64_t id = 1; id <= kSmallCkpts; ++id) {
    ExpectManifestComplete(*store, "small0", id);
    ExpectManifestComplete(*store, "small1", id);
  }
}

// ------------------------------------------------------------- shutdown -----

TEST(CheckpointService, ShutdownDrainsEveryJob) {
  auto store = std::make_shared<storage::InMemoryStore>();
  {
    CheckpointService service(store, SmallService());
    auto a = service.OpenJob(RawJob("a", /*cap=*/2));
    auto b = service.OpenJob(RawJob("b", /*cap=*/2));
    auto c = service.OpenJob(RawJob("c", /*cap=*/2));
    for (std::uint64_t id = 1; id <= 2; ++id) {
      a->SubmitRaw(MakeRequest("a", id));
      b->SubmitRaw(MakeRequest("b", id));
      c->SubmitRaw(MakeRequest("c", id));
    }
    // Handles and service destruct here with six writes in flight; the
    // destructors must drain them all — dropped futures included.
  }
  for (const std::string job : {"a", "b", "c"}) {
    for (std::uint64_t id = 1; id <= 2; ++id) ExpectManifestComplete(*store, job, id);
  }
}

// ------------------------------------------------- pre-commit slot release --

// Blocks Puts of one configured key until released; counts chunk puts.
class GateStore : public storage::InMemoryStore {
 public:
  void Put(const std::string& key, std::vector<std::uint8_t> data) override {
    {
      std::unique_lock lock(mu_);
      if (key == gated_key_) cv_.wait(lock, [&] { return released_; });
    }
    InMemoryStore::Put(key, std::move(data));
    if (key.find("/t") != std::string::npos) ++chunk_puts_;
  }
  void GateKey(std::string key) { gated_key_ = std::move(key); }  // pre-run only
  void Release() {
    {
      std::lock_guard lock(mu_);
      released_ = true;
    }
    cv_.notify_all();
  }
  int chunk_puts() const { return chunk_puts_.load(); }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::string gated_key_;
  bool released_ = false;
  std::atomic<int> chunk_puts_{0};
};

TEST(CheckpointService, PreCommitSlotReleaseAdmitsNextDuringPublicationTail) {
  auto store = std::make_shared<GateStore>();
  store->GateKey(storage::Manifest::DenseKey("gate", 1));

  ServiceConfig cfg = SmallService();
  cfg.release_slot_on_stored = true;  // the satellite under test
  CheckpointService service(store, cfg);
  auto handle = service.OpenJob(RawJob("gate", /*cap=*/1));

  auto f1 = handle->SubmitRaw(MakeRequest("gate", 1));
  // Wait until checkpoint 1 has stored all 8 chunks and is blocked on its
  // dense blob — the publication tail.
  while (store->chunk_puts() < 8) std::this_thread::sleep_for(1ms);

  // With the slot released at "all chunks stored", the next Submit is
  // admitted even though checkpoint 1 has not committed yet.
  std::atomic<bool> admitted{false};
  std::thread trainer([&] {
    auto f2 = handle->SubmitRaw(MakeRequest("gate", 2));
    admitted.store(true);
    f2.get();
  });
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (!admitted.load() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_TRUE(admitted.load()) << "pre-commit slot release never admitted checkpoint 2";
  EXPECT_NE(f1.wait_for(std::chrono::seconds(0)), std::future_status::ready)
      << "checkpoint 1 must still be blocked on its dense put";

  store->Release();
  EXPECT_NO_THROW(f1.get());
  trainer.join();
  ExpectManifestComplete(*store, "gate", 1);
  ExpectManifestComplete(*store, "gate", 2);
}

TEST(CheckpointService, StrictSlotReleaseHoldsAdmissionUntilCommit) {
  auto store = std::make_shared<GateStore>();
  store->GateKey(storage::Manifest::DenseKey("gate", 1));

  ServiceConfig cfg = SmallService();
  cfg.release_slot_on_stored = false;  // original §4.3 behavior
  CheckpointService service(store, cfg);
  auto handle = service.OpenJob(RawJob("gate", /*cap=*/1));

  auto f1 = handle->SubmitRaw(MakeRequest("gate", 1));
  while (store->chunk_puts() < 8) std::this_thread::sleep_for(1ms);

  std::atomic<bool> admitted{false};
  std::thread trainer([&] {
    auto f2 = handle->SubmitRaw(MakeRequest("gate", 2));
    admitted.store(true);
    f2.get();
  });
  std::this_thread::sleep_for(50ms);
  EXPECT_FALSE(admitted.load())
      << "strict mode must hold the slot until checkpoint 1 commits";

  store->Release();
  EXPECT_NO_THROW(f1.get());
  trainer.join();
}

// ------------------------------------------------------------ lineage -------

TEST(CheckpointService, LineageRuleIsPerJob) {
  auto store = std::make_shared<RecordingStore>();
  store->FailCheckpoint("doomed", 1);
  CheckpointService service(store, SmallService());
  auto doomed = service.OpenJob(RawJob("doomed", /*cap=*/2));
  auto healthy = service.OpenJob(RawJob("healthy", /*cap=*/2));

  auto f1 = doomed->SubmitRaw(MakeRequest("doomed", 1));  // fails in flight
  CheckpointRequest inc = MakeRequest("doomed", 2);
  inc.plan.kind = storage::CheckpointKind::kIncremental;
  inc.plan.parent_id = 1;
  inc.plan.rows.resize(1);
  inc.plan.rows[0].emplace_back(64);
  inc.plan.rows[0].emplace_back(64);
  inc.plan.rows[0][0].Set(3);
  auto f2 = doomed->SubmitRaw(std::move(inc));
  auto f3 = healthy->SubmitRaw(MakeRequest("healthy", 1));

  EXPECT_THROW(f1.get(), storage::StoreUnavailable);
  EXPECT_THROW(f2.get(), std::runtime_error);  // lineage rule, same job
  EXPECT_NO_THROW(f3.get());                   // other jobs are untouched

  EXPECT_FALSE(store->Exists(storage::Manifest::ManifestKey("doomed", 1)));
  EXPECT_FALSE(store->Exists(storage::Manifest::ManifestKey("doomed", 2)));
  ExpectManifestComplete(*store, "healthy", 1);
  EXPECT_EQ(doomed->stats().failed, 2u);
  EXPECT_EQ(healthy->stats().committed, 1u);
}

// ------------------------------------------------------- stats & accounting --

TEST(CheckpointService, StatsTrackPerJobOccupancy) {
  auto store = std::make_shared<storage::InMemoryStore>();
  CheckpointService service(store, SmallService());
  auto big = service.OpenJob(RawJob("big"));
  auto tiny = service.OpenJob(RawJob("tiny"));

  big->SubmitRaw(MakeRequest("big", 1, /*rows=*/256)).get();
  tiny->SubmitRaw(MakeRequest("tiny", 1, /*rows=*/16)).get();
  // A future becomes ready a hair before its slot is retired; DrainAll is
  // the quiescence point for counters.
  service.DrainAll();

  const auto stats = service.stats();
  ASSERT_EQ(stats.jobs.size(), 2u);
  EXPECT_EQ(stats.inflight, 0u);
  EXPECT_EQ(stats.jobs.at("big").committed, 1u);
  EXPECT_EQ(stats.jobs.at("tiny").committed, 1u);
  EXPECT_GT(stats.jobs.at("big").store_bytes, stats.jobs.at("tiny").store_bytes);
  EXPECT_EQ(stats.store_bytes,
            stats.jobs.at("big").store_bytes + stats.jobs.at("tiny").store_bytes);
  EXPECT_EQ(stats.store_bytes, store->TotalBytes());
  EXPECT_GT(big->stats().bytes_written, 0u);

  // Codec throughput counters: committed checkpoints accumulate encode/store
  // stage cpu and the chunk bytes it moved, so bytes/sec is derivable from
  // production stats alone.
  const auto& big_stats = stats.jobs.at("big");
  EXPECT_GT(big_stats.chunk_bytes_total, 0u);
  // Stage cpu can legitimately round to 0 µs for a tiny chunk; the derived
  // rate must be consistent with whatever was recorded.
  if (big_stats.encode_us_total > 0) {
    EXPECT_GT(big_stats.EncodeBytesPerSec(), 0.0);
  } else {
    EXPECT_EQ(big_stats.EncodeBytesPerSec(), 0.0);
  }
}

TEST(CheckpointService, SharedQuotaFailsTheOffendingCheckpoint) {
  auto store = std::make_shared<storage::InMemoryStore>();
  ServiceConfig cfg = SmallService();
  cfg.shared_quota_bytes = 1024;  // far below one full checkpoint
  CheckpointService service(store, cfg);
  auto handle = service.OpenJob(RawJob("quota"));

  auto f = handle->SubmitRaw(MakeRequest("quota", 1));
  EXPECT_THROW(f.get(), storage::QuotaExceeded);
  EXPECT_FALSE(store->Exists(storage::Manifest::ManifestKey("quota", 1)))
      << "a quota-rejected checkpoint must never become valid";
}

// --------------------------------------------------------- policy path ------

TEST(CheckpointService, PolicyPathNumbersAndChainsCheckpoints) {
  auto store = std::make_shared<storage::InMemoryStore>();
  CheckpointService service(store, SmallService());

  JobConfig cfg = RawJob("managed");
  cfg.policy = PolicyKind::kOneShot;
  cfg.quantize = false;
  cfg.chunk_rows = 16;
  cfg.total_rows = 128;  // policy sizing without a model
  cfg.gc = true;
  auto handle = service.OpenJob(std::move(cfg));

  // First interval: the policy must plan a full baseline.
  IntervalSubmission first;
  first.snapshot_fn = [] { return MakeSnapshot(); };
  auto s1 = handle->Submit(std::move(first));
  EXPECT_EQ(s1.checkpoint_id, 1u);
  EXPECT_EQ(s1.kind, storage::CheckpointKind::kFull);
  EXPECT_NO_THROW(s1.future.get());

  // Second interval with a few dirty rows: an incremental over the baseline.
  IntervalSubmission second;
  second.snapshot_fn = [] { return MakeSnapshot(); };
  second.interval_dirty.resize(1);
  second.interval_dirty[0].emplace_back(64);
  second.interval_dirty[0].emplace_back(64);
  second.interval_dirty[0][0].Set(1);
  second.interval_dirty[0][1].Set(2);
  auto s2 = handle->Submit(std::move(second));
  EXPECT_EQ(s2.checkpoint_id, 2u);
  EXPECT_EQ(s2.kind, storage::CheckpointKind::kIncremental);
  const WriteResult r2 = s2.future.get();
  EXPECT_EQ(r2.manifest.parent_id, 1u);
  EXPECT_EQ(r2.rows_written, 2u);

  // A raw-only job has no policy to consult.
  auto raw = service.OpenJob(RawJob("raw"));
  IntervalSubmission sub;
  sub.snapshot_fn = [] { return MakeSnapshot(); };
  EXPECT_THROW(raw->Submit(std::move(sub)), std::logic_error);
}

}  // namespace
}  // namespace cnr::core
