// Coordinated sharded checkpointing (core/sharded_checkpoint.h): the
// differential guarantee (a sharded cut restored in full is bit-identical to
// the single-job write path over the same snapshot), CPR-style partial
// restore of a shard subset, torn-commit atomicity under injected storage
// faults (a half-written cut is never observable; the previous cut stays
// restorable), empty-shard handling, and resume of id/epoch numbering.
// Run in CI both plain and with -fsanitize=thread.
#include "core/sharded_checkpoint.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/maintenance.h"
#include "core/recovery.h"
#include "core/writer.h"
#include "data/reader.h"
#include "data/synthetic.h"
#include "storage/fault_injection.h"
#include "storage/object_store.h"

namespace cnr::core {
namespace {

dlrm::ModelConfig SmallModel(std::size_t shards = 4) {
  dlrm::ModelConfig cfg;
  cfg.num_dense = 4;
  cfg.embedding_dim = 8;
  cfg.table_rows = {128, 64};
  cfg.bottom_hidden = {16};
  cfg.top_hidden = {16};
  cfg.num_shards = shards;
  cfg.seed = 5;
  return cfg;
}

data::DatasetConfig MatchingDataset() {
  data::DatasetConfig cfg;
  cfg.seed = 6;
  cfg.num_dense = 4;
  cfg.tables = {{128, 2, 1.1}, {64, 1, 1.05}};
  return cfg;
}

void TrainBatches(dlrm::DlrmModel& model, int from, int to) {
  data::SyntheticDataset ds(MatchingDataset());
  for (int b = from; b < to; ++b) {
    model.TrainBatch(ds.GetBatch(b, static_cast<std::uint64_t>(b) * 32, 32));
  }
}

ShardedJobConfig ShardedConfig(const std::string& name, bool quantize) {
  ShardedJobConfig cfg;
  cfg.name = name;
  cfg.quantize = quantize;
  cfg.quant.method = quant::Method::kAsymmetric;  // linear: rng-independent
  cfg.quant.bits = 8;
  cfg.chunk_rows = 16;
  cfg.gc = false;  // tests inspect the full history
  return cfg;
}

void ExpectModelsEqual(const dlrm::DlrmModel& a, const dlrm::DlrmModel& b) {
  EXPECT_TRUE(a.StateEquals(b));
  for (std::size_t t = 0; t < a.num_tables(); ++t) {
    for (std::size_t s = 0; s < a.table(t).num_shards(); ++s) {
      EXPECT_EQ(a.table(t).Shard(s), b.table(t).Shard(s)) << "table " << t << " shard " << s;
    }
  }
}

// Routes puts under a settable key prefix through a FaultInjectionStore that
// always fails, leaving every other key untouched — targeted torn-commit
// injection (one shard's sub-checkpoint dies, the rest land).
class TargetedFaultStore : public storage::ObjectStore {
 public:
  TargetedFaultStore()
      : inner_(std::make_shared<storage::InMemoryStore>()),
        faulty_(inner_, storage::FaultConfig{.put_failure_probability = 1.0}) {}

  void FailPutsUnder(std::string prefix) {
    std::lock_guard lock(mu_);
    prefix_ = std::move(prefix);
  }

  void Put(const std::string& key, std::vector<std::uint8_t> data) override {
    {
      std::lock_guard lock(mu_);
      if (!prefix_.empty() && key.starts_with(prefix_)) {
        faulty_.Put(key, std::move(data));  // always throws StoreUnavailable
        return;
      }
    }
    inner_->Put(key, std::move(data));
  }
  std::optional<std::vector<std::uint8_t>> Get(const std::string& key) override {
    return inner_->Get(key);
  }
  bool Exists(const std::string& key) override { return inner_->Exists(key); }
  bool Delete(const std::string& key) override { return inner_->Delete(key); }
  std::vector<std::string> List(const std::string& prefix) override {
    return inner_->List(prefix);
  }
  std::uint64_t TotalBytes() override { return inner_->TotalBytes(); }
  storage::StoreStats Stats() override { return inner_->Stats(); }

 private:
  std::shared_ptr<storage::InMemoryStore> inner_;
  storage::FaultInjectionStore faulty_;
  std::mutex mu_;
  std::string prefix_;
};

// The tentpole differential: one consistent cut written as 4 shard
// sub-checkpoints under a coordinated manifest, restored in full, must be
// bit-identical to the same snapshot written through the single-job writer —
// including under (linear) quantization, where both paths must quantize
// identically because chunk boundaries are per (table, shard) in both.
TEST(ShardedCheckpoint, CoordinatedCutRestoresBitIdenticalToSingleJobPath) {
  dlrm::DlrmModel model(SmallModel());
  TrainBatches(model, 0, 8);
  data::ReaderState rs;
  rs.next_batch_id = 8;
  rs.next_sample = 256;
  const std::vector<std::uint8_t> reader_state = rs.Encode();

  // Sharded path.
  auto sharded_store = std::make_shared<storage::InMemoryStore>();
  {
    CheckpointService service(sharded_store);
    ShardedJobHandle handle(service, model, ShardedConfig("sharded", /*quantize=*/true));
    EXPECT_EQ(handle.num_shards(), 4u);
    const CutResult cut = handle.WriteCut(8, 256, reader_state);
    ASSERT_TRUE(cut.committed);
    EXPECT_EQ(cut.cut_epoch, 1u);
    ASSERT_EQ(cut.shard_map.size(), 4u);
    EXPECT_TRUE(cut.failed_shards.empty());
    EXPECT_GT(cut.rows_written, 0u);
  }

  // Single-job path: same snapshot, same codec settings, one checkpoint.
  storage::InMemoryStore plain_store;
  {
    const ModelSnapshot snap = CreateSnapshot(model, 8, 256, nullptr);
    WriterConfig wc;
    wc.job = "plain";
    wc.chunk_rows = 16;
    wc.quant.method = quant::Method::kAsymmetric;
    wc.quant.bits = 8;
    CheckpointPlan plan;
    plan.kind = storage::CheckpointKind::kFull;
    WriteCheckpoint(plain_store, snap, plan, wc, 1, reader_state, nullptr);
  }

  dlrm::DlrmModel from_sharded(SmallModel());
  const ShardedRestoreResult sr = RestoreShardedModel(*sharded_store, "sharded", from_sharded);
  EXPECT_EQ(sr.cut_epoch, 1u);
  EXPECT_EQ(sr.batches_trained, 8u);
  EXPECT_EQ(sr.samples_trained, 256u);
  EXPECT_EQ(sr.reader_state, reader_state);
  EXPECT_EQ(sr.shards_restored.size(), 4u);
  EXPECT_EQ(sr.checkpoints_applied, 4u);  // one sub-checkpoint per shard

  dlrm::DlrmModel from_plain(SmallModel());
  (void)RestoreModel(plain_store, "plain", from_plain);

  ExpectModelsEqual(from_sharded, from_plain);
}

// Per-shard incremental lineage across cuts: cut 1 baselines every shard,
// cut 2 stores only rows dirtied in between, and a full restore of cut 2
// replays each shard's chain back to the training state (quant off, so the
// restored state is exactly the trained one).
TEST(ShardedCheckpoint, IncrementalCutsRestoreAcrossChain) {
  auto store = std::make_shared<storage::InMemoryStore>();
  dlrm::DlrmModel model(SmallModel());
  CheckpointService service(store);
  ShardedJobConfig cfg = ShardedConfig("incr", /*quantize=*/false);
  cfg.policy = PolicyKind::kOneShot;  // deterministic: never re-baselines
  ShardedJobHandle handle(service, model, cfg);

  TrainBatches(model, 0, 4);
  const CutResult cut1 = handle.WriteCut(4, 128);
  ASSERT_TRUE(cut1.committed);

  TrainBatches(model, 4, 8);
  const CutResult cut2 = handle.WriteCut(8, 256);
  ASSERT_TRUE(cut2.committed);
  EXPECT_EQ(cut2.cut_epoch, 2u);
  // The second cut's sub-checkpoints extend the first's per-shard chains.
  EXPECT_LT(cut2.rows_written, cut1.rows_written);

  dlrm::DlrmModel restored(SmallModel());
  const auto rr = RestoreShardedModel(*store, "incr", restored);
  EXPECT_EQ(rr.cut_epoch, 2u);
  EXPECT_GE(rr.checkpoints_applied, 8u);  // 4 shards x a 2-link chain
  ExpectModelsEqual(model, restored);

  // Cut 1 stays independently restorable (keep_cuts is maintenance's call,
  // GC is off here).
  dlrm::DlrmModel at_cut1(SmallModel());
  EXPECT_EQ(RestoreShardedModel(*store, "incr", at_cut1, 1).cut_epoch, 1u);
}

// CPR-style partial recovery: only the lost shards' chains are replayed;
// survivors' rows and the dense layers are untouched. The recovered shards
// are bit-identical to what a full restore produces.
TEST(ShardedCheckpoint, PartialRestoreTouchesOnlyLostShards) {
  auto store = std::make_shared<storage::InMemoryStore>();
  dlrm::DlrmModel model(SmallModel());
  CheckpointService service(store);
  ShardedJobHandle handle(service, model, ShardedConfig("partial", /*quantize=*/false));
  TrainBatches(model, 0, 8);
  ASSERT_TRUE(handle.WriteCut(8, 256).committed);

  dlrm::DlrmModel full(SmallModel());
  (void)RestoreShardedModel(*store, "partial", full);

  dlrm::DlrmModel partial(SmallModel());  // fresh init = the "surviving" state
  const dlrm::DlrmModel fresh(SmallModel());
  const auto pr = RestorePartial(*store, "partial", partial, {1, 3});
  EXPECT_EQ(pr.shards_restored, (std::vector<std::uint32_t>{1, 3}));
  EXPECT_EQ(pr.checkpoints_applied, 2u);
  EXPECT_GT(pr.bytes_read, 0u);

  // Lost shards match the full restore; survivors and dense are untouched.
  for (std::size_t t = 0; t < partial.num_tables(); ++t) {
    for (std::size_t s = 0; s < partial.table(t).num_shards(); ++s) {
      if (s == 1 || s == 3) {
        EXPECT_EQ(partial.table(t).Shard(s), full.table(t).Shard(s))
            << "lost shard not recovered: table " << t << " shard " << s;
      } else {
        EXPECT_EQ(partial.table(t).Shard(s), fresh.table(t).Shard(s))
            << "surviving shard was modified: table " << t << " shard " << s;
      }
    }
  }
  EXPECT_TRUE(partial.DenseEquals(fresh));  // partial restore fetches no dense

  EXPECT_THROW(RestorePartial(*store, "partial", partial, {17}), std::invalid_argument);
}

// Torn-commit atomicity: one shard's sub-checkpoint is killed by the fault
// injector, so the cut must publish NOTHING — the previous coordinated cut
// stays the newest restorable one and the torn epoch is invisible to the
// survey (what `cnr_inspect shards` renders). After the store heals, the
// next cut commits and recovery moves forward.
TEST(ShardedCheckpoint, TornCommitLeavesPreviousCutRestorable) {
  auto store = std::make_shared<TargetedFaultStore>();
  dlrm::DlrmModel model(SmallModel());
  ServiceConfig sc;
  sc.put_attempts = 2;
  sc.retry_backoff = std::chrono::microseconds{0};
  CheckpointService service(store, sc);
  ShardedJobHandle handle(service, model, ShardedConfig("torn", /*quantize=*/false));

  TrainBatches(model, 0, 4);
  ASSERT_TRUE(handle.WriteCut(4, 128).committed);
  dlrm::DlrmModel at_cut1(SmallModel());
  (void)RestoreShardedModel(*store, "torn", at_cut1);

  // Cut 2 would use sub-checkpoint ids 5..8 (4 shards per cut); kill shard
  // 2's (id 7) puts so exactly one shard fails.
  TrainBatches(model, 4, 8);
  store->FailPutsUnder(storage::Manifest::CheckpointPrefix("torn", 7));
  const CutResult torn = handle.WriteCut(8, 256);
  EXPECT_FALSE(torn.committed);
  EXPECT_EQ(torn.failed_shards, (std::vector<std::uint32_t>{2}));
  EXPECT_TRUE(torn.shard_map.empty());

  // The torn epoch is not observable: no COORD object, the survey lists only
  // cut 1, and a restore still lands on cut 1's state.
  EXPECT_EQ(LatestCutEpoch(*store, "torn"), std::optional<std::uint64_t>{1});
  const JobSurvey survey = SurveyJob(*store, "torn", /*measure_orphans=*/false);
  ASSERT_EQ(survey.cuts.size(), 1u);
  EXPECT_EQ(survey.cuts[0].epoch, 1u);
  dlrm::DlrmModel after_torn(SmallModel());
  const auto rr = RestoreShardedModel(*store, "torn", after_torn);
  EXPECT_EQ(rr.cut_epoch, 1u);
  ExpectModelsEqual(after_torn, at_cut1);

  // Healed: the next cut commits (failed shard re-baselines via its policy)
  // and restores the current training state.
  store->FailPutsUnder("");
  const CutResult cut3 = handle.WriteCut(8, 256);
  ASSERT_TRUE(cut3.committed);
  EXPECT_EQ(cut3.cut_epoch, 3u);  // epoch 2 was consumed by the torn attempt
  dlrm::DlrmModel healed(SmallModel());
  EXPECT_EQ(RestoreShardedModel(*store, "torn", healed).cut_epoch, 3u);
  ExpectModelsEqual(healed, model);
}

// A global shard no table reaches (tables clamp their shard count to their
// rows) submits nothing and gets no shard-map entry; the cut still commits
// and restores.
TEST(ShardedCheckpoint, EmptyGlobalShardIsSkipped) {
  dlrm::ModelConfig mc = SmallModel(4);
  mc.table_rows = {128, 3};  // table 1 clamps to 3 shards: global shard 3 only in table 0
  auto store = std::make_shared<storage::InMemoryStore>();
  dlrm::DlrmModel model(mc);
  CheckpointService service(store);
  ShardedJobHandle handle(service, model, ShardedConfig("clamped", /*quantize=*/false));

  data::DatasetConfig dc = MatchingDataset();
  dc.tables = {{128, 2, 1.1}, {3, 1, 1.05}};
  data::SyntheticDataset ds(dc);
  for (int b = 0; b < 4; ++b) model.TrainBatch(ds.GetBatch(b, b * 32ull, 32));

  const CutResult cut = handle.WriteCut(4, 128);
  ASSERT_TRUE(cut.committed);
  EXPECT_EQ(cut.shard_map.size(), 4u);  // all four global shards reach table 0

  dlrm::DlrmModel restored(mc);
  const auto rr = RestoreShardedModel(*store, "clamped", restored);
  EXPECT_EQ(rr.shards_restored.size(), 4u);
  ExpectModelsEqual(model, restored);
}

// Truly-empty global shards: a single-row table under many shards leaves the
// high shards with no tables at all — they must not appear in the shard map.
TEST(ShardedCheckpoint, ShardWithNoTablesGetsNoMapEntry) {
  dlrm::ModelConfig mc;
  mc.num_dense = 4;
  mc.embedding_dim = 8;
  mc.table_rows = {2, 3};
  mc.bottom_hidden = {16};
  mc.top_hidden = {16};
  mc.num_shards = 4;  // tables clamp to 2 and 3 shards: global shard 3 is empty
  mc.seed = 5;
  auto store = std::make_shared<storage::InMemoryStore>();
  dlrm::DlrmModel model(mc);
  CheckpointService service(store);
  ShardedJobHandle handle(service, model, ShardedConfig("tiny", /*quantize=*/false));

  const CutResult cut = handle.WriteCut(1, 32);
  ASSERT_TRUE(cut.committed);
  ASSERT_EQ(cut.shard_map.size(), 3u);
  for (const auto& e : cut.shard_map) EXPECT_LT(e.shard_id, 3u);

  dlrm::DlrmModel restored(mc);
  const auto rr = RestoreShardedModel(*store, "tiny", restored);
  EXPECT_EQ(rr.shards_restored.size(), 3u);
  ExpectModelsEqual(model, restored);
}

// A re-attached handle (service restart) resumes both counters past the
// store's contents, so new sub-checkpoints and cuts never collide with or
// sort below existing ones.
TEST(ShardedCheckpoint, ReattachResumesIdAndEpochNumbering) {
  auto store = std::make_shared<storage::InMemoryStore>();
  dlrm::DlrmModel model(SmallModel());
  TrainBatches(model, 0, 4);
  {
    CheckpointService service(store);
    ShardedJobHandle handle(service, model, ShardedConfig("resume", /*quantize=*/false));
    ASSERT_TRUE(handle.WriteCut(4, 128).committed);
  }
  {
    CheckpointService service(store);
    ShardedJobHandle handle(service, model, ShardedConfig("resume", /*quantize=*/false));
    TrainBatches(model, 4, 8);
    const CutResult cut = handle.WriteCut(8, 256);
    ASSERT_TRUE(cut.committed);
    EXPECT_EQ(cut.cut_epoch, 2u);
    for (const auto& e : cut.shard_map) EXPECT_GT(e.checkpoint_id, 4u);
  }
  dlrm::DlrmModel restored(SmallModel());
  EXPECT_EQ(RestoreShardedModel(*store, "resume", restored).cut_epoch, 2u);
  ExpectModelsEqual(model, restored);
}

}  // namespace
}  // namespace cnr::core
