#include "core/snapshot.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace cnr::core {
namespace {

dlrm::ModelConfig SmallModel() {
  dlrm::ModelConfig cfg;
  cfg.num_dense = 4;
  cfg.embedding_dim = 8;
  cfg.table_rows = {128, 64};
  cfg.bottom_hidden = {16};
  cfg.top_hidden = {16};
  cfg.num_shards = 2;
  cfg.seed = 5;
  return cfg;
}

data::DatasetConfig MatchingDataset() {
  data::DatasetConfig cfg;
  cfg.seed = 6;
  cfg.num_dense = 4;
  cfg.tables = {{128, 2, 1.1}, {64, 1, 1.05}};
  return cfg;
}

TEST(Snapshot, CapturesExactState) {
  dlrm::DlrmModel model(SmallModel());
  data::SyntheticDataset ds(MatchingDataset());
  for (std::uint64_t b = 0; b < 5; ++b) model.TrainBatch(ds.GetBatch(b, b * 32, 32));

  const ModelSnapshot snap = CreateSnapshot(model, 5, 160, nullptr);
  EXPECT_EQ(snap.batches_trained, 5u);
  EXPECT_EQ(snap.samples_trained, 160u);
  EXPECT_EQ(snap.TotalRows(), 128u + 64u);

  for (std::size_t t = 0; t < model.num_tables(); ++t) {
    for (std::size_t s = 0; s < model.table(t).num_shards(); ++s) {
      const auto& shard = model.table(t).Shard(s);
      const auto& ss = snap.shards[t][s];
      EXPECT_EQ(ss.table_id, t);
      EXPECT_EQ(ss.shard_id, s);
      EXPECT_EQ(ss.num_rows, shard.num_rows());
      EXPECT_EQ(ss.dim, shard.dim());
      for (std::size_t r = 0; r < shard.num_rows(); ++r) {
        const auto want = shard.Row(r);
        const auto got = ss.Row(r);
        for (std::size_t d = 0; d < shard.dim(); ++d) EXPECT_EQ(got[d], want[d]);
        EXPECT_EQ(ss.adagrad[r], shard.AdagradState(r));
      }
    }
  }
  EXPECT_FALSE(snap.dense_blob.empty());
}

TEST(Snapshot, ImmutableUnderFurtherTraining) {
  dlrm::DlrmModel model(SmallModel());
  data::SyntheticDataset ds(MatchingDataset());
  model.TrainBatch(ds.GetBatch(0, 0, 32));

  const ModelSnapshot snap = CreateSnapshot(model, 1, 32, nullptr);
  const auto frozen = snap.shards[0][0].weights;

  for (std::uint64_t b = 1; b < 10; ++b) model.TrainBatch(ds.GetBatch(b, b * 32, 32));
  EXPECT_EQ(snap.shards[0][0].weights, frozen);  // the copy is detached
}

TEST(Snapshot, ParallelEqualsSerial) {
  dlrm::DlrmModel model(SmallModel());
  data::SyntheticDataset ds(MatchingDataset());
  for (std::uint64_t b = 0; b < 3; ++b) model.TrainBatch(ds.GetBatch(b, b * 32, 32));

  util::ThreadPool pool(4);
  const ModelSnapshot serial = CreateSnapshot(model, 3, 96, nullptr);
  const ModelSnapshot parallel = CreateSnapshot(model, 3, 96, &pool);

  ASSERT_EQ(serial.shards.size(), parallel.shards.size());
  for (std::size_t t = 0; t < serial.shards.size(); ++t) {
    for (std::size_t s = 0; s < serial.shards[t].size(); ++s) {
      EXPECT_EQ(serial.shards[t][s].weights, parallel.shards[t][s].weights);
      EXPECT_EQ(serial.shards[t][s].adagrad, parallel.shards[t][s].adagrad);
    }
  }
  EXPECT_EQ(serial.dense_blob, parallel.dense_blob);
}

TEST(Snapshot, StateBytesAccounting) {
  dlrm::DlrmModel model(SmallModel());
  const ModelSnapshot snap = CreateSnapshot(model, 0, 0, nullptr);
  const std::size_t embedding_bytes =
      (128 + 64) * 8 * sizeof(float) + (128 + 64) * sizeof(float);
  EXPECT_EQ(snap.StateBytes(), embedding_bytes + snap.dense_blob.size());
}

TEST(Snapshot, StallWallMeasured) {
  dlrm::DlrmModel model(SmallModel());
  const ModelSnapshot snap = CreateSnapshot(model, 0, 0, nullptr);
  EXPECT_GE(snap.stall_wall.count(), 0);
}

}  // namespace
}  // namespace cnr::core
