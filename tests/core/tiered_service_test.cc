// CheckpointService with tiered write-back storage (ServiceConfig::
// near_store): commits land in the near tier and drain asynchronously, a
// restore of the latest checkpoint is served entirely from the near tier
// (zero far-tier Gets — the paper's common recovery case never touches the
// remote link), ServiceStats surfaces the tier counters, and per-tier
// occupancy parity (live stats == offline survey) holds across clean
// eviction and commit-thread GC.
#include "core/service.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/recovery.h"
#include "core/snapshot.h"
#include "data/reader.h"
#include "dlrm/model.h"
#include "storage/object_store.h"
#include "storage/tiered_store.h"

namespace cnr::core {
namespace {

dlrm::ModelConfig SmallModelConfig() {
  dlrm::ModelConfig mcfg;
  mcfg.num_dense = 4;
  mcfg.embedding_dim = 8;
  mcfg.table_rows = {128, 64};
  mcfg.bottom_hidden = {16};
  mcfg.top_hidden = {16};
  mcfg.num_shards = 2;
  return mcfg;
}

CheckpointRequest ModelRequest(const std::string& job, std::uint64_t id,
                               const dlrm::DlrmModel& model) {
  CheckpointRequest req;
  req.checkpoint_id = id;
  req.writer.job = job;
  req.writer.chunk_rows = 16;
  req.writer.quant.method = quant::Method::kNone;
  req.plan.kind = storage::CheckpointKind::kFull;
  data::ReaderState reader_state;
  reader_state.next_batch_id = 10 * id;
  reader_state.next_sample = 320 * id;
  req.reader_state = reader_state.Encode();
  req.snapshot_fn = [&model, id] {
    return CreateSnapshot(model, /*batches_trained=*/10 * id,
                          /*samples_trained=*/320 * id, /*pool=*/nullptr);
  };
  return req;
}

JobConfig RawJob(const std::string& name) {
  JobConfig job;
  job.name = name;
  job.max_inflight_checkpoints = 1;
  job.gc = false;  // raw submissions; the GC test calls GarbageCollectJob itself
  return job;
}

ServiceConfig TieredService(std::shared_ptr<storage::ObjectStore> near_tier,
                            std::uint64_t near_capacity = 0) {
  ServiceConfig cfg;
  cfg.encode_threads = 2;
  cfg.store_threads = 2;
  cfg.near_store = std::move(near_tier);
  cfg.tiered.near_capacity_bytes = near_capacity;
  return cfg;
}

void ExpectTierParity(const storage::TierStats& live, storage::TieredStore& tiered) {
  const storage::TierSurvey near_survey = storage::SurveyTier(tiered.near_tier());
  const storage::TierSurvey far_survey = storage::SurveyTier(tiered.far_tier());
  EXPECT_EQ(live.near_objects, near_survey.objects);
  EXPECT_EQ(live.near_bytes, near_survey.bytes);
  EXPECT_EQ(live.dirty_objects, near_survey.dirty_objects);
  EXPECT_EQ(live.dirty_bytes, near_survey.dirty_bytes);
  EXPECT_EQ(live.far_objects, far_survey.objects);
  EXPECT_EQ(live.far_bytes, far_survey.bytes);
}

TEST(TieredServiceTest, UntieredServiceReportsTieredFalse) {
  auto store = std::make_shared<storage::InMemoryStore>();
  ServiceConfig cfg;
  cfg.encode_threads = 1;
  cfg.store_threads = 1;
  CheckpointService service(store, cfg);
  EXPECT_EQ(service.tiered_store(), nullptr);
  EXPECT_FALSE(service.stats().tiered);
}

TEST(TieredServiceTest, RestoreOfLatestCheckpointNeverTouchesFarTier) {
  auto near_tier = std::make_shared<storage::InMemoryStore>();
  auto far_tier = std::make_shared<storage::InMemoryStore>();
  dlrm::DlrmModel model(SmallModelConfig());

  CheckpointService service(far_tier, TieredService(near_tier));
  auto handle = service.OpenJob(RawJob("tiered"));
  handle->SubmitRaw(ModelRequest("tiered", 1, model)).get();

  ASSERT_NE(service.tiered_store(), nullptr);
  service.tiered_store()->FlushDrains();
  const auto stats = service.stats();
  EXPECT_TRUE(stats.tiered);
  EXPECT_EQ(stats.tier.dirty_objects, 0u);
  EXPECT_GT(stats.tier.drained_objects, 0u);
  // Every checkpoint object is replicated far and still resident near.
  EXPECT_EQ(stats.tier.near_objects, stats.tier.far_objects);

  // The gate: restoring the *latest* checkpoint reads only the near tier.
  const std::uint64_t far_gets_before = far_tier->Stats().gets;
  dlrm::DlrmModel restored(SmallModelConfig());
  const auto rr = RestoreModel(service.store(), "tiered", restored);
  EXPECT_EQ(far_tier->Stats().gets, far_gets_before);
  EXPECT_EQ(rr.checkpoint_id, 1u);
  EXPECT_EQ(rr.batches_trained, 10u);
  EXPECT_TRUE(restored.DenseEquals(model));
  for (std::size_t t = 0; t < model.num_tables(); ++t) {
    for (std::size_t s = 0; s < model.table(t).num_shards(); ++s) {
      EXPECT_EQ(restored.table(t).Shard(s), model.table(t).Shard(s));
    }
  }
  const auto after = service.stats();
  EXPECT_GT(after.tier.near_hits, 0u);
  EXPECT_EQ(after.tier.far_hits, 0u);
  EXPECT_EQ(after.tier.NearHitRatio(), 1.0);
  ExpectTierParity(after.tier, *service.tiered_store());
}

// Eviction + commit-thread GC, then parity: a tight near tier evicts clean
// objects to the far tier, GC deletes superseded checkpoints through the
// decorator, and the live counters still match the offline survey of both
// tiers. Restores stay correct when chunks must come from the far tier.
TEST(TieredServiceTest, ParityHoldsAcrossEvictionAndGc) {
  auto near_tier = std::make_shared<storage::InMemoryStore>();
  auto far_tier = std::make_shared<storage::InMemoryStore>();
  dlrm::DlrmModel model(SmallModelConfig());

  // Capacity far below one checkpoint's footprint: clean chunks are evicted
  // near-continuously, so restores exercise the far-tier read path.
  CheckpointService service(far_tier, TieredService(near_tier, /*near_capacity=*/2048));
  auto handle = service.OpenJob(RawJob("evict"));
  handle->SubmitRaw(ModelRequest("evict", 1, model)).get();
  handle->SubmitRaw(ModelRequest("evict", 2, model)).get();
  // GC through the service's store view: deletes traverse the decorator,
  // cancelling pending drains and tombstoning in-flight replications.
  GarbageCollectJob(service.store(), "evict", /*keep_lineages=*/1);
  service.tiered_store()->FlushDrains();

  const auto stats = service.stats();
  EXPECT_EQ(stats.tier.dirty_objects, 0u);
  EXPECT_GT(stats.tier.evicted_objects, 0u);
  EXPECT_LE(stats.tier.near_bytes, 2048u);
  ExpectTierParity(stats.tier, *service.tiered_store());

  // GC (keep_checkpoints=1) deleted checkpoint 1 in both tiers.
  EXPECT_EQ(LatestCheckpointId(service.store(), "evict"), 2u);
  EXPECT_FALSE(
      service.store().Exists(storage::Manifest::ManifestKey("evict", 1)));
  EXPECT_FALSE(far_tier->Exists(storage::Manifest::ManifestKey("evict", 1)));

  dlrm::DlrmModel restored(SmallModelConfig());
  const auto rr = RestoreModel(service.store(), "evict", restored);
  EXPECT_EQ(rr.checkpoint_id, 2u);
  EXPECT_TRUE(restored.DenseEquals(model));
  const auto after = service.stats();
  EXPECT_GT(after.tier.far_hits, 0u);  // eviction forced far reads
  ExpectTierParity(after.tier, *service.tiered_store());
}

// Shutdown with a healthy far tier drains the backlog: a service restart
// over the same tiers recovers with nothing dirty and full far replication.
TEST(TieredServiceTest, CleanShutdownDrainsBacklog) {
  auto near_tier = std::make_shared<storage::InMemoryStore>();
  auto far_tier = std::make_shared<storage::InMemoryStore>();
  dlrm::DlrmModel model(SmallModelConfig());
  {
    CheckpointService service(far_tier, TieredService(near_tier));
    auto handle = service.OpenJob(RawJob("restart"));
    handle->SubmitRaw(ModelRequest("restart", 1, model)).get();
    // No explicit flush: the service shutdown drains the tier backlog.
  }
  EXPECT_TRUE(near_tier->List(storage::TieredStore::kDirtyPrefix).empty());
  EXPECT_TRUE(far_tier->Exists(storage::Manifest::ManifestKey("restart", 1)));

  CheckpointService service(far_tier, TieredService(near_tier));
  const auto stats = service.stats();
  EXPECT_TRUE(stats.tiered);
  EXPECT_EQ(stats.tier.dirty_objects, 0u);
  ExpectTierParity(stats.tier, *service.tiered_store());
  dlrm::DlrmModel restored(SmallModelConfig());
  EXPECT_EQ(RestoreModel(service.store(), "restart", restored).checkpoint_id, 1u);
  EXPECT_TRUE(restored.DenseEquals(model));
}

}  // namespace
}  // namespace cnr::core
