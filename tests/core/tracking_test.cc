#include "core/tracking.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace cnr::core {
namespace {

dlrm::ModelConfig SmallModel() {
  dlrm::ModelConfig cfg;
  cfg.num_dense = 4;
  cfg.embedding_dim = 8;
  cfg.table_rows = {256, 128};
  cfg.bottom_hidden = {16};
  cfg.top_hidden = {16};
  cfg.num_shards = 2;
  cfg.seed = 11;
  return cfg;
}

data::DatasetConfig MatchingDataset() {
  data::DatasetConfig cfg;
  cfg.seed = 22;
  cfg.num_dense = 4;
  cfg.tables = {{256, 2, 1.1}, {128, 1, 1.05}};
  return cfg;
}

TEST(DirtySets, ShapeMatchesModel) {
  dlrm::DlrmModel model(SmallModel());
  const DirtySets sets = MakeEmptyDirtySets(model);
  ASSERT_EQ(sets.size(), 2u);
  EXPECT_EQ(sets[0].size(), model.table(0).num_shards());
  EXPECT_EQ(sets[0][0].size(), model.table(0).Shard(0).num_rows());
  EXPECT_EQ(CountDirtyRows(sets), 0u);
  EXPECT_EQ(CountTotalRows(model), 256u + 128u);
}

TEST(DirtySets, MergeUnions) {
  dlrm::DlrmModel model(SmallModel());
  DirtySets a = MakeEmptyDirtySets(model);
  DirtySets b = MakeEmptyDirtySets(model);
  a[0][0].Set(1);
  b[0][0].Set(2);
  b[1][0].Set(3);
  MergeDirtySets(a, b);
  EXPECT_EQ(CountDirtyRows(a), 3u);
  EXPECT_TRUE(a[0][0].Test(1));
  EXPECT_TRUE(a[0][0].Test(2));
  EXPECT_TRUE(a[1][0].Test(3));
}

TEST(Tracker, TrackedEqualsActuallyModified) {
  dlrm::DlrmModel model(SmallModel());
  dlrm::DlrmModel pristine(SmallModel());
  ModifiedRowTracker tracker(model);

  data::SyntheticDataset ds(MatchingDataset());
  for (std::uint64_t b = 0; b < 10; ++b) model.TrainBatch(ds.GetBatch(b, b * 32, 32));

  const DirtySets dirty = tracker.HarvestInterval();

  // Ground truth: rows whose state differs from the pristine twin. Tracking
  // must have no false negatives (every changed row is marked). The converse
  // may not hold: a row whose gradient was exactly zero (dead ReLU path) is
  // updated-but-unchanged, and tracking it is conservative and harmless.
  std::uint64_t changed_rows = 0;
  for (std::size_t t = 0; t < model.num_tables(); ++t) {
    for (std::size_t s = 0; s < model.table(t).num_shards(); ++s) {
      const auto& shard = model.table(t).Shard(s);
      const auto& ref = pristine.table(t).Shard(s);
      for (std::size_t r = 0; r < shard.num_rows(); ++r) {
        const bool changed = shard.AdagradState(r) != ref.AdagradState(r);
        if (changed) {
          ++changed_rows;
          EXPECT_TRUE(dirty[t][s].Test(r))
              << "table " << t << " shard " << s << " row " << r << " changed but untracked";
        }
      }
    }
  }
  EXPECT_GT(changed_rows, 0u);
  EXPECT_GE(CountDirtyRows(dirty), changed_rows);
}

TEST(Tracker, HarvestResetsAccumulator) {
  dlrm::DlrmModel model(SmallModel());
  ModifiedRowTracker tracker(model);
  data::SyntheticDataset ds(MatchingDataset());

  model.TrainBatch(ds.GetBatch(0, 0, 32));
  EXPECT_GT(tracker.DirtyRowCount(), 0u);
  (void)tracker.HarvestInterval();
  EXPECT_EQ(tracker.DirtyRowCount(), 0u);

  model.TrainBatch(ds.GetBatch(1, 32, 32));
  EXPECT_GT(tracker.DirtyRowCount(), 0u);
}

TEST(Tracker, DetachStopsObserving) {
  dlrm::DlrmModel model(SmallModel());
  ModifiedRowTracker tracker(model);
  data::SyntheticDataset ds(MatchingDataset());
  tracker.Detach();
  model.TrainBatch(ds.GetBatch(0, 0, 32));
  EXPECT_EQ(tracker.DirtyRowCount(), 0u);
}

TEST(Tracker, HookCallsCounted) {
  dlrm::DlrmModel model(SmallModel());
  ModifiedRowTracker tracker(model);
  data::SyntheticDataset ds(MatchingDataset());
  model.TrainBatch(ds.GetBatch(0, 0, 16));
  EXPECT_GT(tracker.hook_calls(), 0u);
  // One hook call per (table, distinct row) per batch.
  EXPECT_EQ(tracker.hook_calls(), tracker.DirtyRowCount());
}

TEST(Tracker, DirtyFractionGrowsSublinearly) {
  // The Fig 5 property: with Zipf-skewed accesses, the cumulative modified
  // fraction grows much slower than the number of samples.
  dlrm::DlrmModel model(SmallModel());
  ModifiedRowTracker tracker(model);
  data::SyntheticDataset ds(MatchingDataset());

  std::uint64_t after10 = 0;
  for (std::uint64_t b = 0; b < 40; ++b) {
    model.TrainBatch(ds.GetBatch(b, b * 32, 32));
    if (b == 9) after10 = tracker.DirtyRowCount();
  }
  const std::uint64_t after40 = tracker.DirtyRowCount();
  EXPECT_GT(after40, after10);
  // 4x the samples must touch far less than 4x the rows.
  EXPECT_LT(static_cast<double>(after40), 2.5 * static_cast<double>(after10));
}

}  // namespace
}  // namespace cnr::core
