#include <gtest/gtest.h>

#include <cmath>

#include "core/recovery.h"
#include "core/tracking.h"
#include "core/writer.h"
#include "data/synthetic.h"

namespace cnr::core {
namespace {

dlrm::ModelConfig SmallModel() {
  dlrm::ModelConfig cfg;
  cfg.num_dense = 4;
  cfg.embedding_dim = 8;
  cfg.table_rows = {128, 64};
  cfg.bottom_hidden = {16};
  cfg.top_hidden = {16};
  cfg.num_shards = 2;
  cfg.seed = 5;
  return cfg;
}

data::DatasetConfig MatchingDataset() {
  data::DatasetConfig cfg;
  cfg.seed = 6;
  cfg.num_dense = 4;
  cfg.tables = {{128, 2, 1.1}, {64, 1, 1.05}};
  return cfg;
}

WriterConfig PlainWriter() {
  WriterConfig cfg;
  cfg.job = "test";
  cfg.chunk_rows = 16;
  cfg.quant.method = quant::Method::kNone;
  return cfg;
}

data::ReaderState SomeReaderState() {
  data::ReaderState rs;
  rs.next_batch_id = 9;
  rs.next_sample = 9 * 32;
  return rs;
}

// Trains a few batches and returns the model.
dlrm::DlrmModel TrainedModel(int batches) {
  dlrm::DlrmModel model(SmallModel());
  data::SyntheticDataset ds(MatchingDataset());
  for (int b = 0; b < batches; ++b) {
    model.TrainBatch(ds.GetBatch(b, static_cast<std::uint64_t>(b) * 32, 32));
  }
  return model;
}

void ExpectModelsEqual(const dlrm::DlrmModel& a, const dlrm::DlrmModel& b) {
  // StateEquals is the authoritative parity predicate; the per-shard loop
  // only localizes a failure for the test log.
  EXPECT_TRUE(a.StateEquals(b));
  for (std::size_t t = 0; t < a.num_tables(); ++t) {
    for (std::size_t s = 0; s < a.table(t).num_shards(); ++s) {
      EXPECT_EQ(a.table(t).Shard(s), b.table(t).Shard(s)) << "table " << t << " shard " << s;
    }
  }
}

TEST(WriterRecovery, FullCheckpointRoundTripBitExact) {
  dlrm::DlrmModel model = TrainedModel(8);
  storage::InMemoryStore store;

  const ModelSnapshot snap = CreateSnapshot(model, 8, 256, nullptr);
  CheckpointPlan plan;
  plan.kind = storage::CheckpointKind::kFull;
  const auto result =
      WriteCheckpoint(store, snap, plan, PlainWriter(), 1, SomeReaderState().Encode(), nullptr);

  EXPECT_EQ(result.rows_written, 128u + 64u);
  EXPECT_GT(result.bytes_written, 0u);

  dlrm::DlrmModel restored(SmallModel());
  const auto rr = RestoreModel(store, "test", restored);
  EXPECT_EQ(rr.checkpoint_id, 1u);
  EXPECT_EQ(rr.batches_trained, 8u);
  EXPECT_EQ(rr.samples_trained, 256u);
  EXPECT_EQ(rr.reader_state, SomeReaderState());
  EXPECT_EQ(rr.checkpoints_applied, 1u);
  ExpectModelsEqual(model, restored);
}

TEST(WriterRecovery, IncrementalRestoresModifiedRows) {
  storage::InMemoryStore store;
  data::SyntheticDataset ds(MatchingDataset());

  dlrm::DlrmModel model(SmallModel());
  ModifiedRowTracker tracker(model);

  // Interval 1: train, full checkpoint.
  for (int b = 0; b < 4; ++b) model.TrainBatch(ds.GetBatch(b, b * 32ull, 32));
  (void)tracker.HarvestInterval();
  {
    const ModelSnapshot snap = CreateSnapshot(model, 4, 128, nullptr);
    CheckpointPlan plan;
    plan.kind = storage::CheckpointKind::kFull;
    WriteCheckpoint(store, snap, plan, PlainWriter(), 1, SomeReaderState().Encode(), nullptr);
  }

  // Interval 2: more training, incremental over baseline.
  for (int b = 4; b < 8; ++b) model.TrainBatch(ds.GetBatch(b, b * 32ull, 32));
  {
    const ModelSnapshot snap = CreateSnapshot(model, 8, 256, nullptr);
    CheckpointPlan plan;
    plan.kind = storage::CheckpointKind::kIncremental;
    plan.parent_id = 1;
    plan.rows = tracker.HarvestInterval();
    const auto result = WriteCheckpoint(store, snap, plan, PlainWriter(), 2,
                                        SomeReaderState().Encode(), nullptr);
    // Incremental writes strictly fewer rows than the full model.
    EXPECT_LT(result.rows_written, 128u + 64u);
    EXPECT_GT(result.rows_written, 0u);
  }

  dlrm::DlrmModel restored(SmallModel());
  const auto rr = RestoreModel(store, "test", restored);
  EXPECT_EQ(rr.checkpoints_applied, 2u);
  ExpectModelsEqual(model, restored);
}

TEST(WriterRecovery, ConsecutiveChainRestores) {
  storage::InMemoryStore store;
  data::SyntheticDataset ds(MatchingDataset());
  dlrm::DlrmModel model(SmallModel());
  ModifiedRowTracker tracker(model);

  // Full baseline at id 1, then three consecutive incrementals 2..4, each
  // holding only its own interval's rows.
  {
    const ModelSnapshot snap = CreateSnapshot(model, 0, 0, nullptr);
    CheckpointPlan plan;
    plan.kind = storage::CheckpointKind::kFull;
    WriteCheckpoint(store, snap, plan, PlainWriter(), 1, SomeReaderState().Encode(), nullptr);
  }
  for (std::uint64_t id = 2; id <= 4; ++id) {
    for (int b = 0; b < 3; ++b) {
      const auto g = (id - 2) * 3 + b;
      model.TrainBatch(ds.GetBatch(g, g * 32ull, 32));
    }
    const ModelSnapshot snap = CreateSnapshot(model, (id - 1) * 3, (id - 1) * 96, nullptr);
    CheckpointPlan plan;
    plan.kind = storage::CheckpointKind::kIncremental;
    plan.parent_id = id - 1;
    plan.rows = tracker.HarvestInterval();
    WriteCheckpoint(store, snap, plan, PlainWriter(), id, SomeReaderState().Encode(), nullptr);
  }

  const auto chain = ResolveChain(store, "test", 4);
  EXPECT_EQ(chain, (std::vector<std::uint64_t>{1, 2, 3, 4}));

  dlrm::DlrmModel restored(SmallModel());
  const auto rr = RestoreModel(store, "test", restored);
  EXPECT_EQ(rr.checkpoints_applied, 4u);
  ExpectModelsEqual(model, restored);
}

TEST(WriterRecovery, QuantizedRestoreWithinGridError) {
  dlrm::DlrmModel model = TrainedModel(6);
  storage::InMemoryStore store;

  WriterConfig wcfg = PlainWriter();
  wcfg.quant.method = quant::Method::kAsymmetric;
  wcfg.quant.bits = 8;

  const ModelSnapshot snap = CreateSnapshot(model, 6, 192, nullptr);
  CheckpointPlan plan;
  plan.kind = storage::CheckpointKind::kFull;
  WriteCheckpoint(store, snap, plan, wcfg, 1, SomeReaderState().Encode(), nullptr);

  dlrm::DlrmModel restored(SmallModel());
  RestoreModel(store, "test", restored);

  // Every weight within half a quantization step of its row's range.
  for (std::size_t t = 0; t < model.num_tables(); ++t) {
    for (std::size_t s = 0; s < model.table(t).num_shards(); ++s) {
      const auto& orig = model.table(t).Shard(s);
      const auto& back = restored.table(t).Shard(s);
      for (std::size_t r = 0; r < orig.num_rows(); ++r) {
        const auto p = quant::AsymmetricParams(orig.Row(r));
        const float step = (p.xmax - p.xmin) / 255.0f;
        for (std::size_t d = 0; d < orig.dim(); ++d) {
          EXPECT_LE(std::fabs(orig.Row(r)[d] - back.Row(r)[d]), step * 0.5f + 1e-7f);
        }
        // Optimizer state is never quantized.
        EXPECT_EQ(orig.AdagradState(r), back.AdagradState(r));
      }
    }
  }
}

TEST(WriterRecovery, QuantizationShrinksCheckpoint) {
  // Use a wider embedding dim so the sparse layer dominates the checkpoint
  // (at paper scale embeddings are >99% of the model; at dim 8 the fp32
  // dense blob and adagrad state would mask the savings).
  dlrm::ModelConfig wide = SmallModel();
  wide.embedding_dim = 32;
  dlrm::DlrmModel model(wide);
  data::SyntheticDataset ds(MatchingDataset());
  for (int b = 0; b < 4; ++b) model.TrainBatch(ds.GetBatch(b, b * 32ull, 32));
  const ModelSnapshot snap = CreateSnapshot(model, 4, 128, nullptr);
  CheckpointPlan plan;
  plan.kind = storage::CheckpointKind::kFull;

  std::uint64_t sizes[2];
  int i = 0;
  for (const int bits : {32, 4}) {
    storage::InMemoryStore store;
    WriterConfig wcfg = PlainWriter();
    if (bits != 32) {
      wcfg.quant.method = quant::Method::kAsymmetric;
      wcfg.quant.bits = bits;
    }
    const auto result =
        WriteCheckpoint(store, snap, plan, wcfg, 1, SomeReaderState().Encode(), nullptr);
    sizes[i++] = result.bytes_written;
  }
  // 4-bit embeddings ~8x smaller; with adagrad + params overhead expect >2x.
  EXPECT_GT(sizes[0], sizes[1] * 2);
}

TEST(WriterRecovery, MixedQuantChainUsesPerManifestConfig) {
  storage::InMemoryStore store;
  data::SyntheticDataset ds(MatchingDataset());
  dlrm::DlrmModel model(SmallModel());
  ModifiedRowTracker tracker(model);

  // Baseline at 4 bits.
  for (int b = 0; b < 4; ++b) model.TrainBatch(ds.GetBatch(b, b * 32ull, 32));
  (void)tracker.HarvestInterval();
  WriterConfig w4 = PlainWriter();
  w4.quant.method = quant::Method::kAsymmetric;
  w4.quant.bits = 4;
  {
    const ModelSnapshot snap = CreateSnapshot(model, 4, 128, nullptr);
    CheckpointPlan plan;
    plan.kind = storage::CheckpointKind::kFull;
    WriteCheckpoint(store, snap, plan, w4, 1, SomeReaderState().Encode(), nullptr);
  }
  // Incremental at 8 bits (fallback scenario).
  for (int b = 4; b < 8; ++b) model.TrainBatch(ds.GetBatch(b, b * 32ull, 32));
  WriterConfig w8 = PlainWriter();
  w8.quant.method = quant::Method::kAsymmetric;
  w8.quant.bits = 8;
  {
    const ModelSnapshot snap = CreateSnapshot(model, 8, 256, nullptr);
    CheckpointPlan plan;
    plan.kind = storage::CheckpointKind::kIncremental;
    plan.parent_id = 1;
    plan.rows = tracker.HarvestInterval();
    WriteCheckpoint(store, snap, plan, w8, 2, SomeReaderState().Encode(), nullptr);
  }

  dlrm::DlrmModel restored(SmallModel());
  const auto rr = RestoreModel(store, "test", restored);
  EXPECT_EQ(rr.checkpoints_applied, 2u);
  // Coarse sanity: restored weights within each row's full range of original.
  for (std::size_t t = 0; t < model.num_tables(); ++t) {
    for (std::size_t s = 0; s < model.table(t).num_shards(); ++s) {
      const auto& orig = model.table(t).Shard(s);
      const auto& back = restored.table(t).Shard(s);
      for (std::size_t r = 0; r < orig.num_rows(); ++r) {
        const auto p = quant::AsymmetricParams(orig.Row(r));
        for (std::size_t d = 0; d < orig.dim(); ++d) {
          EXPECT_LE(std::fabs(orig.Row(r)[d] - back.Row(r)[d]),
                    (p.xmax - p.xmin) * 0.5f + 1e-6f);
        }
      }
    }
  }
}

TEST(WriterRecovery, LatestCheckpointIdFindsNewest) {
  storage::InMemoryStore store;
  EXPECT_FALSE(LatestCheckpointId(store, "test").has_value());

  dlrm::DlrmModel model = TrainedModel(2);
  const ModelSnapshot snap = CreateSnapshot(model, 2, 64, nullptr);
  CheckpointPlan plan;
  plan.kind = storage::CheckpointKind::kFull;
  for (const std::uint64_t id : {3ull, 12ull, 7ull}) {
    WriteCheckpoint(store, snap, plan, PlainWriter(), id, SomeReaderState().Encode(), nullptr);
  }
  EXPECT_EQ(LatestCheckpointId(store, "test"), 12u);
  EXPECT_FALSE(LatestCheckpointId(store, "otherjob").has_value());
}

TEST(WriterRecovery, MissingChunkFailsRecovery) {
  dlrm::DlrmModel model = TrainedModel(2);
  storage::InMemoryStore store;
  const ModelSnapshot snap = CreateSnapshot(model, 2, 64, nullptr);
  CheckpointPlan plan;
  plan.kind = storage::CheckpointKind::kFull;
  const auto result =
      WriteCheckpoint(store, snap, plan, PlainWriter(), 1, SomeReaderState().Encode(), nullptr);
  ASSERT_FALSE(result.manifest.chunks.empty());
  store.Delete(result.manifest.chunks[0].key);

  dlrm::DlrmModel restored(SmallModel());
  EXPECT_THROW(RestoreModel(store, "test", restored), std::runtime_error);
}

TEST(WriterRecovery, CorruptedChunkDetectedByChecksum) {
  dlrm::DlrmModel model = TrainedModel(3);
  storage::InMemoryStore store;
  const ModelSnapshot snap = CreateSnapshot(model, 3, 96, nullptr);
  CheckpointPlan plan;
  plan.kind = storage::CheckpointKind::kFull;
  const auto result =
      WriteCheckpoint(store, snap, plan, PlainWriter(), 1, SomeReaderState().Encode(), nullptr);

  // Flip one bit in the middle of a chunk (simulated storage-tier bit rot).
  const auto& key = result.manifest.chunks[0].key;
  auto blob = *store.Get(key);
  blob[blob.size() / 2] ^= 0x01;
  store.Put(key, std::move(blob));

  dlrm::DlrmModel restored(SmallModel());
  try {
    RestoreModel(store, "test", restored);
    FAIL() << "corruption not detected";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos) << e.what();
  }
}

TEST(WriterRecovery, TruncatedChunkDetected) {
  dlrm::DlrmModel model = TrainedModel(2);
  storage::InMemoryStore store;
  const ModelSnapshot snap = CreateSnapshot(model, 2, 64, nullptr);
  CheckpointPlan plan;
  plan.kind = storage::CheckpointKind::kFull;
  const auto result =
      WriteCheckpoint(store, snap, plan, PlainWriter(), 1, SomeReaderState().Encode(), nullptr);

  const auto& key = result.manifest.chunks[0].key;
  auto blob = *store.Get(key);
  blob.resize(blob.size() - 10);  // lost tail (e.g. partial replication)
  store.Put(key, std::move(blob));

  dlrm::DlrmModel restored(SmallModel());
  EXPECT_THROW(RestoreModel(store, "test", restored), std::runtime_error);
}

TEST(WriterRecovery, RestoreWithNoCheckpointsThrows) {
  storage::InMemoryStore store;
  dlrm::DlrmModel model(SmallModel());
  EXPECT_THROW(RestoreModel(store, "test", model), std::runtime_error);
}

TEST(WriterRecovery, ParallelWriterMatchesSerial) {
  dlrm::DlrmModel model = TrainedModel(5);
  const ModelSnapshot snap = CreateSnapshot(model, 5, 160, nullptr);
  CheckpointPlan plan;
  plan.kind = storage::CheckpointKind::kFull;

  storage::InMemoryStore serial_store, parallel_store;
  util::ThreadPool pool(4);
  WriteCheckpoint(serial_store, snap, plan, PlainWriter(), 1, SomeReaderState().Encode(),
                  nullptr);
  WriteCheckpoint(parallel_store, snap, plan, PlainWriter(), 1, SomeReaderState().Encode(),
                  &pool);

  dlrm::DlrmModel a(SmallModel()), b(SmallModel());
  RestoreModel(serial_store, "test", a);
  RestoreModel(parallel_store, "test", b);
  ExpectModelsEqual(a, b);
}

TEST(WriterRecovery, ChunkRowsDoNotAffectResult) {
  dlrm::DlrmModel model = TrainedModel(5);
  const ModelSnapshot snap = CreateSnapshot(model, 5, 160, nullptr);
  CheckpointPlan plan;
  plan.kind = storage::CheckpointKind::kFull;

  for (const std::size_t chunk_rows : {1u, 7u, 64u, 100000u}) {
    storage::InMemoryStore store;
    WriterConfig wcfg = PlainWriter();
    wcfg.chunk_rows = chunk_rows;
    WriteCheckpoint(store, snap, plan, wcfg, 1, SomeReaderState().Encode(), nullptr);
    dlrm::DlrmModel restored(SmallModel());
    RestoreModel(store, "test", restored);
    ExpectModelsEqual(model, restored);
  }
}

TEST(WriterRecovery, ZeroChunkRowsThrows) {
  dlrm::DlrmModel model = TrainedModel(1);
  const ModelSnapshot snap = CreateSnapshot(model, 1, 32, nullptr);
  CheckpointPlan plan;
  plan.kind = storage::CheckpointKind::kFull;
  storage::InMemoryStore store;
  WriterConfig wcfg = PlainWriter();
  wcfg.chunk_rows = 0;
  EXPECT_THROW(
      WriteCheckpoint(store, snap, plan, wcfg, 1, SomeReaderState().Encode(), nullptr),
      std::invalid_argument);
}

}  // namespace
}  // namespace cnr::core
