#include "data/reader.h"

#include <gtest/gtest.h>

#include <thread>

namespace cnr::data {
namespace {

DatasetConfig SmallConfig() {
  DatasetConfig cfg;
  cfg.seed = 7;
  cfg.num_dense = 2;
  cfg.tables = {{100, 1, 1.1}};
  return cfg;
}

ReaderConfig SmallReader() {
  ReaderConfig cfg;
  cfg.batch_size = 16;
  cfg.num_workers = 3;
  cfg.queue_capacity = 4;
  return cfg;
}

TEST(ReaderState, EncodeDecode) {
  ReaderState s;
  s.next_batch_id = 17;
  s.next_sample = 17 * 16;
  const auto bytes = s.Encode();
  EXPECT_EQ(ReaderState::Decode(bytes), s);
}

TEST(ReaderMaster, DeliversExactBudgetInOrder) {
  SyntheticDataset ds(SmallConfig());
  ReaderMaster reader(ds, SmallReader());
  reader.AllowBatches(10);
  for (std::uint64_t i = 0; i < 10; ++i) {
    const auto batch = reader.NextBatch();
    ASSERT_TRUE(batch.has_value());
    EXPECT_EQ(batch->batch_id, i);
    EXPECT_EQ(batch->first_sample, i * 16);
    EXPECT_EQ(batch->size(), 16u);
  }
  // Budget exhausted: no more batches.
  EXPECT_FALSE(reader.NextBatch().has_value());
  EXPECT_EQ(reader.DeliveredBatches(), 10u);
}

TEST(ReaderMaster, BatchesMatchDataset) {
  SyntheticDataset ds(SmallConfig());
  ReaderMaster reader(ds, SmallReader());
  reader.AllowBatches(3);
  while (auto batch = reader.NextBatch()) {
    for (std::size_t i = 0; i < batch->size(); ++i) {
      const Sample want = ds.Get(batch->first_sample + i);
      EXPECT_EQ(batch->samples[i].dense, want.dense);
      EXPECT_EQ(batch->samples[i].sparse, want.sparse);
    }
  }
}

TEST(ReaderMaster, CollectStateIsGapFree) {
  SyntheticDataset ds(SmallConfig());
  ReaderMaster reader(ds, SmallReader());
  reader.AllowBatches(5);
  while (reader.NextBatch()) {
  }
  const ReaderState state = reader.CollectState();
  EXPECT_EQ(state.next_batch_id, 5u);
  EXPECT_EQ(state.next_sample, 5u * 16u);
}

TEST(ReaderMaster, MultipleBudgetExtensions) {
  SyntheticDataset ds(SmallConfig());
  ReaderMaster reader(ds, SmallReader());
  reader.AllowBatches(2);
  EXPECT_TRUE(reader.NextBatch().has_value());
  EXPECT_TRUE(reader.NextBatch().has_value());
  EXPECT_FALSE(reader.NextBatch().has_value());

  reader.AllowBatches(3);
  int extra = 0;
  while (reader.NextBatch()) ++extra;
  EXPECT_EQ(extra, 3);
  EXPECT_EQ(reader.CollectState().next_batch_id, 5u);
}

TEST(ReaderMaster, ResumeFromStateContinuesExactly) {
  SyntheticDataset ds(SmallConfig());
  std::vector<Batch> uninterrupted;
  {
    ReaderMaster reader(ds, SmallReader());
    reader.AllowBatches(8);
    while (auto b = reader.NextBatch()) uninterrupted.push_back(std::move(*b));
  }

  // Split run: 3 batches, collect state, new reader resumes with 5 more.
  ReaderState mid;
  std::vector<Batch> split;
  {
    ReaderMaster reader(ds, SmallReader());
    reader.AllowBatches(3);
    while (auto b = reader.NextBatch()) split.push_back(std::move(*b));
    mid = reader.CollectState();
  }
  {
    ReaderMaster reader(ds, SmallReader(), mid);
    reader.AllowBatches(5);
    while (auto b = reader.NextBatch()) split.push_back(std::move(*b));
  }

  ASSERT_EQ(split.size(), uninterrupted.size());
  for (std::size_t i = 0; i < split.size(); ++i) {
    EXPECT_EQ(split[i].batch_id, uninterrupted[i].batch_id);
    EXPECT_EQ(split[i].first_sample, uninterrupted[i].first_sample);
    for (std::size_t j = 0; j < split[i].size(); ++j) {
      EXPECT_EQ(split[i].samples[j].dense, uninterrupted[i].samples[j].dense);
      EXPECT_EQ(split[i].samples[j].sparse, uninterrupted[i].samples[j].sparse);
      EXPECT_EQ(split[i].samples[j].label, uninterrupted[i].samples[j].label);
    }
  }
}

TEST(ReaderMaster, LargeBudgetStress) {
  SyntheticDataset ds(SmallConfig());
  ReaderConfig cfg;
  cfg.batch_size = 8;
  cfg.num_workers = 8;
  cfg.queue_capacity = 3;  // heavy backpressure
  ReaderMaster reader(ds, cfg);
  reader.AllowBatches(200);
  std::uint64_t expect_id = 0;
  while (auto b = reader.NextBatch()) {
    EXPECT_EQ(b->batch_id, expect_id++);
  }
  EXPECT_EQ(expect_id, 200u);
  EXPECT_EQ(reader.CollectState().next_batch_id, 200u);
}

TEST(ReaderMaster, ConsumerOnAnotherThread) {
  SyntheticDataset ds(SmallConfig());
  ReaderMaster reader(ds, SmallReader());
  reader.AllowBatches(25);
  std::atomic<int> consumed{0};
  std::thread consumer([&] {
    while (reader.NextBatch()) consumed.fetch_add(1);
  });
  // CollectState on this thread must wait until the consumer drains.
  const ReaderState state = reader.CollectState();
  EXPECT_EQ(state.next_batch_id, 25u);
  consumer.join();
  EXPECT_EQ(consumed.load(), 25);
}

TEST(ReaderMaster, DestructorUnblocksCleanly) {
  SyntheticDataset ds(SmallConfig());
  auto reader = std::make_unique<ReaderMaster>(ds, SmallReader());
  reader->AllowBatches(1000);
  (void)reader->NextBatch();
  reader.reset();  // workers mid-production must exit without hanging
}

TEST(ReaderMaster, InvalidConfigThrows) {
  SyntheticDataset ds(SmallConfig());
  ReaderConfig bad = SmallReader();
  bad.batch_size = 0;
  EXPECT_THROW(ReaderMaster(ds, bad), std::invalid_argument);
  bad = SmallReader();
  bad.num_workers = 0;
  EXPECT_THROW(ReaderMaster(ds, bad), std::invalid_argument);
  bad = SmallReader();
  bad.queue_capacity = 0;
  EXPECT_THROW(ReaderMaster(ds, bad), std::invalid_argument);
}

}  // namespace
}  // namespace cnr::data
