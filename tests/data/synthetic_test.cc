#include "data/synthetic.h"

#include <gtest/gtest.h>

#include <set>

namespace cnr::data {
namespace {

DatasetConfig SmallConfig() {
  DatasetConfig cfg;
  cfg.seed = 99;
  cfg.num_dense = 4;
  cfg.tables = {{1000, 2, 1.1}, {500, 1, 1.05}};
  return cfg;
}

TEST(SyntheticDataset, ShapeMatchesConfig) {
  SyntheticDataset ds(SmallConfig());
  const Sample s = ds.Get(0);
  EXPECT_EQ(s.dense.size(), 4u);
  ASSERT_EQ(s.sparse.size(), 2u);
  EXPECT_EQ(s.sparse[0].size(), 2u);
  EXPECT_EQ(s.sparse[1].size(), 1u);
  EXPECT_TRUE(s.label == 0.0f || s.label == 1.0f);
}

TEST(SyntheticDataset, IdsInRange) {
  SyntheticDataset ds(SmallConfig());
  for (std::uint64_t i = 0; i < 500; ++i) {
    const Sample s = ds.Get(i);
    for (const auto id : s.sparse[0]) EXPECT_LT(id, 1000u);
    for (const auto id : s.sparse[1]) EXPECT_LT(id, 500u);
  }
}

TEST(SyntheticDataset, DeterministicByIndex) {
  SyntheticDataset a(SmallConfig()), b(SmallConfig());
  for (const std::uint64_t i : {0ull, 1ull, 1000ull, 123456789ull}) {
    const Sample sa = a.Get(i);
    const Sample sb = b.Get(i);
    EXPECT_EQ(sa.dense, sb.dense);
    EXPECT_EQ(sa.sparse, sb.sparse);
    EXPECT_EQ(sa.label, sb.label);
  }
}

TEST(SyntheticDataset, RandomAccessEqualsSequential) {
  SyntheticDataset ds(SmallConfig());
  // Reading 5 then 3 must give the same record 3 as reading in order —
  // the property reader replay correctness rests on.
  const Sample early = ds.Get(3);
  (void)ds.Get(5);
  const Sample again = ds.Get(3);
  EXPECT_EQ(early.dense, again.dense);
  EXPECT_EQ(early.sparse, again.sparse);
}

TEST(SyntheticDataset, DifferentSeedsDiffer) {
  auto cfg2 = SmallConfig();
  cfg2.seed = 100;
  SyntheticDataset a(SmallConfig()), b(cfg2);
  int same = 0;
  for (std::uint64_t i = 0; i < 50; ++i) {
    if (a.Get(i).dense == b.Get(i).dense) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(SyntheticDataset, ZipfSkewInIds) {
  SyntheticDataset ds(SmallConfig());
  std::uint64_t head = 0, total = 0;
  for (std::uint64_t i = 0; i < 3000; ++i) {
    const Sample s = ds.Get(i);
    for (const auto id : s.sparse[0]) {
      ++total;
      if (id < 10) ++head;  // first 1% of ids
    }
  }
  // Zipf(1.1): the head must be strongly over-represented vs uniform (1%).
  EXPECT_GT(static_cast<double>(head) / static_cast<double>(total), 0.15);
}

TEST(SyntheticDataset, LabelsCorrelateWithTeacher) {
  // Labels must carry signal: the click rate conditioned on a frequent id
  // should differ from the global rate for at least some ids (otherwise
  // training could never beat the constant predictor and Fig 14 would be
  // meaningless).
  SyntheticDataset ds(SmallConfig());
  std::map<std::uint32_t, std::pair<int, int>> per_id;  // id -> (clicks, n)
  int clicks = 0, n = 0;
  for (std::uint64_t i = 0; i < 20000; ++i) {
    const Sample s = ds.Get(i);
    clicks += s.label > 0.5f ? 1 : 0;
    ++n;
    auto& [c, cnt] = per_id[s.sparse[0][0]];
    c += s.label > 0.5f ? 1 : 0;
    ++cnt;
  }
  const double global_rate = static_cast<double>(clicks) / n;
  EXPECT_GT(global_rate, 0.05);
  EXPECT_LT(global_rate, 0.95);
  double max_dev = 0.0;
  for (const auto& [id, cc] : per_id) {
    if (cc.second < 300) continue;  // frequent ids only
    const double rate = static_cast<double>(cc.first) / cc.second;
    max_dev = std::max(max_dev, std::fabs(rate - global_rate));
  }
  EXPECT_GT(max_dev, 0.03);
}

TEST(SyntheticDataset, GetBatchMatchesGet) {
  SyntheticDataset ds(SmallConfig());
  const Batch b = ds.GetBatch(7, 100, 32);
  EXPECT_EQ(b.batch_id, 7u);
  EXPECT_EQ(b.first_sample, 100u);
  ASSERT_EQ(b.size(), 32u);
  for (std::size_t i = 0; i < 32; ++i) {
    const Sample s = ds.Get(100 + i);
    EXPECT_EQ(b.samples[i].dense, s.dense);
    EXPECT_EQ(b.samples[i].sparse, s.sparse);
    EXPECT_EQ(b.samples[i].label, s.label);
  }
}

TEST(SyntheticDataset, InvalidConfigThrows) {
  DatasetConfig no_tables;
  no_tables.tables.clear();
  EXPECT_THROW(SyntheticDataset{no_tables}, std::invalid_argument);

  DatasetConfig zero_rows = SmallConfig();
  zero_rows.tables[0].num_rows = 0;
  EXPECT_THROW(SyntheticDataset{zero_rows}, std::invalid_argument);

  DatasetConfig bad_hot = SmallConfig();
  bad_hot.tables[0].multi_hot = 0;
  EXPECT_THROW(SyntheticDataset{bad_hot}, std::invalid_argument);
}

}  // namespace
}  // namespace cnr::data
