#include "dlrm/metrics.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace cnr::dlrm {
namespace {

BatchMetrics Make(double loss_sum, std::uint64_t samples) {
  BatchMetrics m;
  m.loss_sum = loss_sum;
  m.samples = samples;
  return m;
}

TEST(BatchMetrics, MeanLoss) {
  EXPECT_EQ(Make(10.0, 4).MeanLoss(), 2.5);
  EXPECT_EQ(Make(0.0, 0).MeanLoss(), 0.0);
}

TEST(BatchMetrics, Merge) {
  BatchMetrics a = Make(10.0, 4);
  a.Merge(Make(2.0, 2));
  EXPECT_EQ(a.loss_sum, 12.0);
  EXPECT_EQ(a.samples, 6u);
  EXPECT_EQ(a.MeanLoss(), 2.0);
}

TEST(MetricTracker, LifetimeAccumulates) {
  MetricTracker t(4);
  t.Add(Make(4.0, 2));
  t.Add(Make(2.0, 2));
  EXPECT_EQ(t.samples(), 4u);
  EXPECT_EQ(t.LifetimeLoss(), 1.5);
}

TEST(MetricTracker, WindowSlides) {
  MetricTracker t(2);
  t.Add(Make(100.0, 1));  // will be evicted
  t.Add(Make(2.0, 1));
  t.Add(Make(4.0, 1));
  EXPECT_EQ(t.WindowLoss(), 3.0);          // only last two batches
  EXPECT_EQ(t.LifetimeLoss(), 106.0 / 3);  // lifetime keeps everything
}

TEST(MetricTracker, EmptyIsZero) {
  MetricTracker t;
  EXPECT_EQ(t.samples(), 0u);
  EXPECT_EQ(t.LifetimeLoss(), 0.0);
  EXPECT_EQ(t.WindowLoss(), 0.0);
}

TEST(RelativeDegradation, Percent) {
  EXPECT_DOUBLE_EQ(RelativeDegradationPct(0.50, 0.505), 1.0);
  EXPECT_DOUBLE_EQ(RelativeDegradationPct(0.50, 0.50), 0.0);
  EXPECT_LT(RelativeDegradationPct(0.50, 0.49), 0.0);  // improvement is negative
  EXPECT_EQ(RelativeDegradationPct(0.0, 1.0), 0.0);    // guarded division
}

TEST(Auc, PerfectAndChanceRanking) {
  // Build a tiny model and a hand-made batch whose labels follow a dense
  // feature the model can't see vs one it can. Instead of training, exploit
  // Predict's monotonicity in its input by constructing samples directly.
  dlrm::ModelConfig cfg;
  cfg.num_dense = 1;
  cfg.embedding_dim = 4;
  cfg.table_rows = {8};
  cfg.bottom_hidden = {4};
  cfg.top_hidden = {4};
  cfg.num_shards = 1;
  cfg.seed = 3;
  DlrmModel model(cfg);

  data::Batch batch;
  for (int i = 0; i < 40; ++i) {
    data::Sample s;
    s.dense = {static_cast<float>(i) / 40.0f};
    s.sparse = {{static_cast<std::uint32_t>(i % 8)}};
    s.label = 0.0f;
    batch.samples.push_back(s);
  }
  // Label by the model's own prediction: the induced ranking is perfect.
  std::vector<std::pair<float, std::size_t>> scored;
  for (std::size_t i = 0; i < batch.samples.size(); ++i) {
    scored.emplace_back(model.Predict(batch.samples[i]), i);
  }
  std::sort(scored.begin(), scored.end());
  for (std::size_t rank = 0; rank < scored.size(); ++rank) {
    batch.samples[scored[rank].second].label = rank >= scored.size() / 2 ? 1.0f : 0.0f;
  }
  EXPECT_NEAR(Auc(model, batch), 1.0, 1e-9);

  // Inverted labels: AUC 0.
  for (auto& s : batch.samples) s.label = 1.0f - s.label;
  EXPECT_NEAR(Auc(model, batch), 0.0, 1e-9);
}

TEST(Auc, DegenerateBatchesThrow) {
  dlrm::ModelConfig cfg;
  cfg.num_dense = 1;
  cfg.embedding_dim = 4;
  cfg.table_rows = {8};
  cfg.bottom_hidden = {4};
  cfg.top_hidden = {4};
  cfg.num_shards = 1;
  DlrmModel model(cfg);

  data::Batch empty;
  EXPECT_THROW(Auc(model, empty), std::invalid_argument);

  data::Batch single_class;
  data::Sample s;
  s.dense = {0.0f};
  s.sparse = {{0}};
  s.label = 1.0f;
  single_class.samples = {s, s};
  EXPECT_THROW(Auc(model, single_class), std::invalid_argument);
}

TEST(Auc, TrainingImprovesAuc) {
  dlrm::ModelConfig cfg;
  cfg.num_dense = 4;
  cfg.embedding_dim = 8;
  cfg.table_rows = {256, 128};
  cfg.bottom_hidden = {16};
  cfg.top_hidden = {16};
  cfg.num_shards = 2;
  cfg.seed = 11;
  DlrmModel model(cfg);

  data::DatasetConfig dcfg;
  dcfg.seed = 22;
  dcfg.num_dense = 4;
  dcfg.tables = {{256, 2, 1.1}, {128, 1, 1.05}};
  data::SyntheticDataset ds(dcfg);

  const data::Batch probe = ds.GetBatch(0, 100000, 512);
  const double before = Auc(model, probe);
  for (std::uint64_t b = 0; b < 150; ++b) model.TrainBatch(ds.GetBatch(b, b * 64, 64));
  const double after = Auc(model, probe);
  EXPECT_GT(after, before);
  EXPECT_GT(after, 0.55);  // meaningfully better than chance
}

}  // namespace
}  // namespace cnr::dlrm
