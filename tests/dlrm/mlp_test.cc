#include "dlrm/mlp.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace cnr::dlrm {
namespace {

TEST(Mlp, ShapeAndParameterCount) {
  util::Rng rng(1);
  Mlp mlp({4, 8, 2}, true, rng);
  EXPECT_EQ(mlp.in_dim(), 4u);
  EXPECT_EQ(mlp.out_dim(), 2u);
  EXPECT_EQ(mlp.num_layers(), 2u);
  EXPECT_EQ(mlp.ParameterCount(), 4u * 8 + 8 + 8u * 2 + 2);
}

TEST(Mlp, TooFewDimsThrows) {
  util::Rng rng(1);
  EXPECT_THROW(Mlp({4}, true, rng), std::invalid_argument);
}

TEST(Mlp, ForwardShapes) {
  util::Rng rng(2);
  Mlp mlp({3, 5, 1}, false, rng);
  MlpCache cache;
  const std::vector<float> x = {1.0f, -1.0f, 0.5f};
  const auto y = mlp.Forward(x, cache);
  EXPECT_EQ(y.size(), 1u);
  EXPECT_EQ(cache.activations.size(), 3u);
  EXPECT_THROW(mlp.Forward(std::vector<float>{1.0f}, cache), std::invalid_argument);
}

TEST(Mlp, ReluClampsHiddenActivations) {
  util::Rng rng(3);
  Mlp mlp({2, 16, 1}, true, rng);
  MlpCache cache;
  (void)mlp.Forward(std::vector<float>{1.0f, 1.0f}, cache);
  for (const float v : cache.activations[1]) EXPECT_GE(v, 0.0f);
  for (const float v : cache.activations[2]) EXPECT_GE(v, 0.0f);  // final_relu
}

TEST(Mlp, FinalLayerUnclampedWhenRequested) {
  // With a deterministic negative-output construction: a zero-initialized MLP
  // can't prove it, so probe many random ones — at least one logit < 0.
  bool saw_negative = false;
  for (int seed = 0; seed < 20 && !saw_negative; ++seed) {
    util::Rng rng(seed);
    Mlp mlp({2, 4, 1}, false, rng);
    MlpCache cache;
    const auto y = mlp.Forward(std::vector<float>{1.0f, -1.0f}, cache);
    saw_negative = y[0] < 0.0f;
  }
  EXPECT_TRUE(saw_negative);
}

// Full backprop gradient check against numerical differentiation on a scalar
// loss L = output[0].
TEST(Mlp, BackwardMatchesNumericalGradient) {
  util::Rng rng(5);
  Mlp mlp({3, 4, 1}, false, rng);
  const std::vector<float> x = {0.3f, -0.7f, 1.1f};

  MlpCache cache;
  (void)mlp.Forward(x, cache);
  MlpGrads grads = mlp.MakeGrads();
  std::vector<float> dx(3, 0.0f);
  mlp.Backward(cache, std::vector<float>{1.0f}, grads, dx);

  const float eps = 1e-3f;
  for (std::size_t c = 0; c < 3; ++c) {
    auto xp = x, xm = x;
    xp[c] += eps;
    xm[c] -= eps;
    MlpCache cp, cm;
    const float num = (mlp.Forward(xp, cp)[0] - mlp.Forward(xm, cm)[0]) / (2 * eps);
    EXPECT_NEAR(dx[c], num, 2e-2) << "dx[" << c << "]";
  }
}

TEST(Mlp, StepMovesAgainstGradient) {
  util::Rng rng(6);
  Mlp mlp({2, 2, 1}, false, rng);
  const std::vector<float> x = {1.0f, 1.0f};
  MlpCache cache;
  const float before = mlp.Forward(x, cache)[0];

  MlpGrads grads = mlp.MakeGrads();
  mlp.Backward(cache, std::vector<float>{1.0f}, grads, {});
  mlp.Step(grads, /*lr=*/0.1f, /*batch_scale=*/1.0f);

  MlpCache cache2;
  const float after = mlp.Forward(x, cache2)[0];
  EXPECT_LT(after, before);  // gradient step on dL/dout=+1 lowers the output
}

TEST(Mlp, StaleCacheThrows) {
  util::Rng rng(7);
  Mlp mlp({2, 2, 1}, false, rng);
  MlpCache cache;  // never filled
  MlpGrads grads = mlp.MakeGrads();
  EXPECT_THROW(mlp.Backward(cache, std::vector<float>{1.0f}, grads, {}),
               std::invalid_argument);
}

TEST(Mlp, SerializeRoundTrip) {
  util::Rng rng(8);
  Mlp mlp({4, 6, 3}, true, rng);
  util::Writer w;
  mlp.Serialize(w);
  util::Reader r(w.bytes());
  const Mlp back = Mlp::Deserialize(r);
  EXPECT_EQ(back, mlp);
  // Behavioural equality too.
  MlpCache c1, c2;
  const std::vector<float> x = {1, 2, 3, 4};
  const auto y1 = mlp.Forward(x, c1);
  const auto y2 = back.Forward(x, c2);
  for (std::size_t i = 0; i < y1.size(); ++i) EXPECT_EQ(y1[i], y2[i]);
}

TEST(Mlp, GradsZero) {
  util::Rng rng(9);
  Mlp mlp({2, 3, 1}, false, rng);
  MlpGrads grads = mlp.MakeGrads();
  MlpCache cache;
  (void)mlp.Forward(std::vector<float>{1.0f, 2.0f}, cache);
  mlp.Backward(cache, std::vector<float>{1.0f}, grads, {});
  grads.Zero();
  for (const auto& m : grads.dw) {
    for (const float v : m.Flat()) EXPECT_EQ(v, 0.0f);
  }
  for (const auto& b : grads.db) {
    for (const float v : b) EXPECT_EQ(v, 0.0f);
  }
}

// Deep MLP gradient check, parameterized over depth.
class MlpDepthTest : public ::testing::TestWithParam<int> {};

TEST_P(MlpDepthTest, GradientCheckAtDepth) {
  const int depth = GetParam();
  util::Rng rng(depth * 100 + 3);
  std::vector<std::size_t> dims = {3};
  for (int i = 0; i < depth; ++i) dims.push_back(4);
  dims.push_back(1);
  Mlp mlp(dims, false, rng);

  const std::vector<float> x = {0.5f, -0.5f, 0.25f};
  MlpCache cache;
  (void)mlp.Forward(x, cache);
  MlpGrads grads = mlp.MakeGrads();
  std::vector<float> dx(3, 0.0f);
  mlp.Backward(cache, std::vector<float>{1.0f}, grads, dx);

  const float eps = 1e-3f;
  for (std::size_t c = 0; c < 3; ++c) {
    auto xp = x, xm = x;
    xp[c] += eps;
    xm[c] -= eps;
    MlpCache cp, cm;
    const float num = (mlp.Forward(xp, cp)[0] - mlp.Forward(xm, cm)[0]) / (2 * eps);
    EXPECT_NEAR(dx[c], num, 5e-2);
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, MlpDepthTest, ::testing::Values(1, 2, 3, 5));

}  // namespace
}  // namespace cnr::dlrm
