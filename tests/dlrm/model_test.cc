#include "dlrm/model.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "util/rng.h"

namespace cnr::dlrm {
namespace {

ModelConfig SmallModel() {
  ModelConfig cfg;
  cfg.num_dense = 4;
  cfg.embedding_dim = 8;
  cfg.table_rows = {256, 128};
  cfg.bottom_hidden = {16};
  cfg.top_hidden = {16};
  cfg.num_shards = 2;
  cfg.seed = 11;
  return cfg;
}

data::DatasetConfig MatchingDataset() {
  data::DatasetConfig cfg;
  cfg.seed = 22;
  cfg.num_dense = 4;
  cfg.tables = {{256, 2, 1.1}, {128, 1, 1.05}};
  return cfg;
}

TEST(DlrmModel, ConstructionShape) {
  DlrmModel model(SmallModel());
  EXPECT_EQ(model.num_tables(), 2u);
  EXPECT_EQ(model.table(0).num_rows(), 256u);
  EXPECT_EQ(model.table(1).num_rows(), 128u);
  EXPECT_EQ(model.EmbeddingParameterCount(), 256u * 8 + 128u * 8);
  EXPECT_GT(model.ParameterCount(), model.EmbeddingParameterCount());
}

TEST(DlrmModel, NoTablesThrows) {
  ModelConfig cfg = SmallModel();
  cfg.table_rows.clear();
  EXPECT_THROW(DlrmModel{cfg}, std::invalid_argument);
}

TEST(DlrmModel, PredictIsAProbability) {
  DlrmModel model(SmallModel());
  data::SyntheticDataset ds(MatchingDataset());
  for (std::uint64_t i = 0; i < 50; ++i) {
    const float p = model.Predict(ds.Get(i));
    EXPECT_GE(p, 0.0f);
    EXPECT_LE(p, 1.0f);
  }
}

TEST(DlrmModel, MismatchedSampleThrows) {
  DlrmModel model(SmallModel());
  data::Sample s;
  s.dense = {1, 2, 3, 4};
  s.sparse = {{0}};  // one table instead of two
  EXPECT_THROW(model.Predict(s), std::invalid_argument);
}

TEST(DlrmModel, TrainingReducesLoss) {
  DlrmModel model(SmallModel());
  data::SyntheticDataset ds(MatchingDataset());

  // Loss over a held-out slice before and after training.
  const data::Batch holdout = ds.GetBatch(0, 100000, 512);
  const double before = model.EvalBatch(holdout).MeanLoss();
  for (std::uint64_t b = 0; b < 150; ++b) {
    model.TrainBatch(ds.GetBatch(b, b * 64, 64));
  }
  const double after = model.EvalBatch(holdout).MeanLoss();
  EXPECT_LT(after, before * 0.995);
}

TEST(DlrmModel, EvalDoesNotChangeState) {
  DlrmModel model(SmallModel());
  data::SyntheticDataset ds(MatchingDataset());
  const data::Batch batch = ds.GetBatch(0, 0, 32);
  const double first = model.EvalBatch(batch).MeanLoss();
  const double second = model.EvalBatch(batch).MeanLoss();
  EXPECT_EQ(first, second);
}

TEST(DlrmModel, TrainBatchReturnsSampleCount) {
  DlrmModel model(SmallModel());
  data::SyntheticDataset ds(MatchingDataset());
  const auto m = model.TrainBatch(ds.GetBatch(0, 0, 48));
  EXPECT_EQ(m.samples, 48u);
  EXPECT_GT(m.loss_sum, 0.0);
}

TEST(DlrmModel, EmptyBatchIsNoop) {
  DlrmModel model(SmallModel());
  data::Batch empty;
  const auto m = model.TrainBatch(empty);
  EXPECT_EQ(m.samples, 0u);
  EXPECT_EQ(m.MeanLoss(), 0.0);
}

TEST(DlrmModel, DeterministicTraining) {
  DlrmModel a(SmallModel()), b(SmallModel());
  data::SyntheticDataset ds(MatchingDataset());
  for (std::uint64_t i = 0; i < 20; ++i) {
    const data::Batch batch = ds.GetBatch(i, i * 32, 32);
    const auto ma = a.TrainBatch(batch);
    const auto mb = b.TrainBatch(batch);
    EXPECT_EQ(ma.loss_sum, mb.loss_sum) << "batch " << i;
  }
  // Embedding state identical after identical training.
  for (std::size_t t = 0; t < a.num_tables(); ++t) {
    for (std::size_t s = 0; s < a.table(t).num_shards(); ++s) {
      EXPECT_EQ(a.table(t).Shard(s), b.table(t).Shard(s));
    }
  }
  EXPECT_TRUE(a.DenseEquals(b));
}

TEST(DlrmModel, OnlyLookedUpRowsChange) {
  DlrmModel model(SmallModel());
  data::SyntheticDataset ds(MatchingDataset());

  // Record which logical rows each table looks up in one batch.
  const data::Batch batch = ds.GetBatch(0, 0, 16);
  std::vector<std::set<std::uint32_t>> touched(model.num_tables());
  for (const auto& s : batch.samples) {
    for (std::size_t t = 0; t < s.sparse.size(); ++t) {
      for (const auto id : s.sparse[t]) touched[t].insert(id);
    }
  }

  // Snapshot weights, train, compare.
  DlrmModel pristine(SmallModel());
  model.TrainBatch(batch);
  for (std::size_t t = 0; t < model.num_tables(); ++t) {
    for (std::size_t row = 0; row < model.table(t).num_rows(); ++row) {
      const auto got = model.table(t).LookupRow(row);
      const auto want = pristine.table(t).LookupRow(row);
      const bool same = std::equal(got.begin(), got.end(), want.begin());
      if (!touched[t].contains(static_cast<std::uint32_t>(row))) {
        EXPECT_TRUE(same) << "untouched row " << row << " of table " << t << " changed";
      }
    }
  }
}

TEST(DlrmModel, DenseSerializeRoundTrip) {
  DlrmModel model(SmallModel());
  data::SyntheticDataset ds(MatchingDataset());
  for (std::uint64_t i = 0; i < 5; ++i) model.TrainBatch(ds.GetBatch(i, i * 32, 32));

  util::Writer w;
  model.SerializeDense(w);

  DlrmModel fresh(SmallModel());
  EXPECT_FALSE(fresh.DenseEquals(model));
  util::Reader r(w.bytes());
  fresh.RestoreDense(r);
  EXPECT_TRUE(fresh.DenseEquals(model));
}

// Different shard counts must not change training results (sharding is an
// implementation detail of model parallelism).
class ShardCountInvarianceTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ShardCountInvarianceTest, LossIndependentOfSharding) {
  ModelConfig base = SmallModel();
  base.num_shards = 1;
  ModelConfig alt = SmallModel();
  alt.num_shards = GetParam();

  DlrmModel a(base), b(alt);
  data::SyntheticDataset ds(MatchingDataset());
  for (std::uint64_t i = 0; i < 10; ++i) {
    const data::Batch batch = ds.GetBatch(i, i * 32, 32);
    EXPECT_EQ(a.TrainBatch(batch).loss_sum, b.TrainBatch(batch).loss_sum) << "batch " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Shards, ShardCountInvarianceTest, ::testing::Values(2, 4, 8));

}  // namespace
}  // namespace cnr::dlrm
