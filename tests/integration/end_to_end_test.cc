// End-to-end lifecycle tests: train -> checkpoint -> crash -> restore ->
// continue, across policies and quantization settings. These are the
// system-level guarantees the paper's design rests on:
//   * unquantized checkpoints + deterministic replay give bit-exact recovery
//     under every incremental policy;
//   * quantized checkpoints keep accuracy degradation bounded across
//     multiple restarts;
//   * reader state recorded in a checkpoint is exactly consistent with the
//     trainer progress (no sample trained twice or skipped).
#include <gtest/gtest.h>

#include <memory>

#include "core/checknrun.h"

namespace cnr::core {
namespace {

dlrm::ModelConfig SmallModel() {
  dlrm::ModelConfig cfg;
  cfg.num_dense = 4;
  cfg.embedding_dim = 8;
  cfg.table_rows = {512, 256};
  cfg.bottom_hidden = {16};
  cfg.top_hidden = {16};
  cfg.num_shards = 4;
  cfg.seed = 31;
  return cfg;
}

data::DatasetConfig MatchingDataset() {
  data::DatasetConfig cfg;
  cfg.seed = 32;
  cfg.num_dense = 4;
  cfg.tables = {{512, 2, 1.1}, {256, 1, 1.05}};
  return cfg;
}

data::ReaderConfig SmallReader() {
  data::ReaderConfig cfg;
  cfg.batch_size = 32;
  cfg.num_workers = 3;
  cfg.queue_capacity = 4;
  return cfg;
}

CheckNRunConfig ConfigFor(PolicyKind policy, bool quantize) {
  CheckNRunConfig cfg;
  cfg.job = "e2e";
  cfg.interval_batches = 4;
  cfg.policy = policy;
  cfg.quantize = quantize;
  cfg.dynamic_bitwidth = false;
  cfg.quant.method = quant::Method::kAsymmetric;
  cfg.quant.bits = 8;
  cfg.chunk_rows = 64;
  cfg.pipeline_threads = 2;
  return cfg;
}

void ExpectModelsEqual(const dlrm::DlrmModel& a, const dlrm::DlrmModel& b) {
  EXPECT_TRUE(a.DenseEquals(b));
  for (std::size_t t = 0; t < a.num_tables(); ++t) {
    for (std::size_t s = 0; s < a.table(t).num_shards(); ++s) {
      EXPECT_EQ(a.table(t).Shard(s), b.table(t).Shard(s));
    }
  }
}

class PolicyRecoveryTest : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(PolicyRecoveryTest, CrashRestoreBitExactUnquantized) {
  const PolicyKind policy = GetParam();
  data::SyntheticDataset ds(MatchingDataset());

  // Reference: uninterrupted 7 intervals.
  dlrm::DlrmModel reference(SmallModel());
  {
    data::ReaderMaster reader(ds, SmallReader());
    CheckNRun cnr(reference, reader, std::make_shared<storage::InMemoryStore>(),
                  ConfigFor(policy, false));
    cnr.Run(7);
  }

  // Crash run: 4 intervals, crash (model discarded), restore, 3 more.
  auto store = std::make_shared<storage::InMemoryStore>();
  {
    dlrm::DlrmModel doomed(SmallModel());
    data::ReaderMaster reader(ds, SmallReader());
    CheckNRun cnr(doomed, reader, store, ConfigFor(policy, false));
    cnr.Run(4);
    // Simulate additional progress lost to the crash: train a partial
    // interval that never reaches a checkpoint.
    reader.AllowBatches(2);
    while (auto b = reader.NextBatch()) doomed.TrainBatch(*b);
  }
  dlrm::DlrmModel restored(SmallModel());
  const auto rr = RestoreModel(*store, "e2e", restored);
  EXPECT_EQ(rr.batches_trained, 16u);  // partial interval was lost, as designed
  {
    data::ReaderMaster reader(ds, SmallReader(), rr.reader_state);
    CheckNRun cnr(restored, reader, store, ConfigFor(policy, false));
    cnr.SetProgress(rr.batches_trained, rr.samples_trained);
    cnr.SetNextCheckpointId(rr.checkpoint_id + 1);
    cnr.Run(3);
  }

  ExpectModelsEqual(reference, restored);
}

INSTANTIATE_TEST_SUITE_P(Policies, PolicyRecoveryTest,
                         ::testing::Values(PolicyKind::kAlwaysFull, PolicyKind::kOneShot,
                                           PolicyKind::kConsecutive,
                                           PolicyKind::kIntermittent),
                         [](const auto& info) {
                           std::string name = PolicyName(info.param);
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(EndToEnd, ReaderStateConsistentWithTrainerProgress) {
  data::SyntheticDataset ds(MatchingDataset());
  auto store = std::make_shared<storage::InMemoryStore>();
  dlrm::DlrmModel model(SmallModel());
  data::ReaderMaster reader(ds, SmallReader());
  CheckNRun cnr(model, reader, store, ConfigFor(PolicyKind::kIntermittent, false));
  cnr.Run(5);

  const auto manifest = LoadManifest(*store, "e2e", *LatestCheckpointId(*store, "e2e"));
  const auto rs = data::ReaderState::Decode(manifest.reader_state);
  // Gap-free coordination: reader position == trainer progress exactly.
  EXPECT_EQ(rs.next_batch_id, manifest.batches_trained);
  EXPECT_EQ(rs.next_sample, manifest.samples_trained);
}

TEST(EndToEnd, RepeatedFailuresWithQuantizedCheckpointsStayClose) {
  data::SyntheticDataset ds(MatchingDataset());

  // Unquantized uninterrupted reference.
  dlrm::DlrmModel reference(SmallModel());
  {
    data::ReaderMaster reader(ds, SmallReader());
    CheckNRun cnr(reference, reader, std::make_shared<storage::InMemoryStore>(),
                  ConfigFor(PolicyKind::kIntermittent, false));
    cnr.Run(9);
  }

  // Quantized run with two mid-training restarts (after intervals 3 and 6).
  auto store = std::make_shared<storage::InMemoryStore>();
  dlrm::DlrmModel model(SmallModel());
  std::uint64_t next_id = 1;
  data::ReaderState rstate;
  std::uint64_t batches = 0, samples = 0;
  for (const int legs : {3, 3, 3}) {
    dlrm::DlrmModel leg_model(SmallModel());
    if (next_id > 1) {
      const auto rr = RestoreModel(*store, "e2e", leg_model);
      rstate = rr.reader_state;
      batches = rr.batches_trained;
      samples = rr.samples_trained;
    }
    data::ReaderMaster reader(ds, SmallReader(), rstate);
    CheckNRun cnr(leg_model, reader, store, ConfigFor(PolicyKind::kIntermittent, true));
    cnr.SetProgress(batches, samples);
    cnr.SetNextCheckpointId(next_id);
    cnr.Run(legs);
    next_id += legs;
    model = std::move(leg_model);
  }

  // Accuracy degradation on a held-out probe must stay small (8-bit).
  const data::Batch probe = ds.GetBatch(0, 1000000, 512);
  const double ref_loss = reference.EvalBatch(probe).MeanLoss();
  const double run_loss = model.EvalBatch(probe).MeanLoss();
  EXPECT_NEAR(run_loss, ref_loss, ref_loss * 0.02)
      << "ref=" << ref_loss << " run=" << run_loss;
}

TEST(EndToEnd, StoreContainsOnlyWhatRecoveryNeeds) {
  data::SyntheticDataset ds(MatchingDataset());
  auto store = std::make_shared<storage::InMemoryStore>();
  dlrm::DlrmModel model(SmallModel());
  data::ReaderMaster reader(ds, SmallReader());
  CheckNRun cnr(model, reader, store, ConfigFor(PolicyKind::kIntermittent, false));
  cnr.Run(8);
  cnr.Drain();

  // Every object in the store belongs to a checkpoint on the recovery chain.
  const auto latest = *LatestCheckpointId(*store, "e2e");
  const auto chain = ResolveChain(*store, "e2e", latest);
  for (const auto& key : store->List("")) {
    bool on_chain = false;
    for (const auto id : chain) {
      if (key.starts_with(storage::Manifest::CheckpointPrefix("e2e", id))) {
        on_chain = true;
        break;
      }
    }
    EXPECT_TRUE(on_chain) << "orphaned object: " << key;
  }
}

}  // namespace
}  // namespace cnr::core
