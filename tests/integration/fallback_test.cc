// End-to-end test of the dynamic bit-width fallback (paper §6.2.1): a job
// sized for `expected_restarts` failures uses an aggressive bit-width; once
// observed restarts exceed the estimate, every subsequent checkpoint is
// written with 8-bit asymmetric quantization — verified here through the
// actual manifests in the store, across a restore boundary.
#include <gtest/gtest.h>

#include <memory>

#include "core/checknrun.h"

namespace cnr::core {
namespace {

dlrm::ModelConfig SmallModel() {
  dlrm::ModelConfig cfg;
  cfg.num_dense = 4;
  cfg.embedding_dim = 8;
  cfg.table_rows = {256, 128};
  cfg.bottom_hidden = {16};
  cfg.top_hidden = {16};
  cfg.num_shards = 2;
  cfg.seed = 17;
  return cfg;
}

data::DatasetConfig MatchingDataset() {
  data::DatasetConfig cfg;
  cfg.seed = 18;
  cfg.num_dense = 4;
  cfg.tables = {{256, 2, 1.1}, {128, 1, 1.05}};
  return cfg;
}

data::ReaderConfig SmallReader() {
  data::ReaderConfig cfg;
  cfg.batch_size = 32;
  cfg.num_workers = 2;
  cfg.queue_capacity = 4;
  return cfg;
}

CheckNRunConfig Config() {
  CheckNRunConfig cfg;
  cfg.job = "fallback";
  cfg.interval_batches = 4;
  cfg.policy = PolicyKind::kIntermittent;
  cfg.quantize = true;
  cfg.dynamic_bitwidth = true;
  cfg.expected_restarts = 1;  // 2-bit operating point
  cfg.chunk_rows = 64;
  return cfg;
}

TEST(FallbackIntegration, ExceedingRestartEstimateSwitchesTo8Bit) {
  data::SyntheticDataset ds(MatchingDataset());
  auto store = std::make_shared<storage::InMemoryStore>();

  // Leg 1: healthy training at the 2-bit operating point.
  {
    dlrm::DlrmModel model(SmallModel());
    data::ReaderMaster reader(ds, SmallReader());
    CheckNRun cnr(model, reader, store, Config());
    cnr.Run(2);
  }
  {
    const auto m = LoadManifest(*store, "fallback", *LatestCheckpointId(*store, "fallback"));
    EXPECT_EQ(m.quant.bits, 2);
    EXPECT_EQ(m.quant.method, quant::Method::kAdaptiveAsymmetric);
  }

  // Legs 2 and 3: two restarts. The second exceeds expected_restarts = 1,
  // so checkpoints written after it must be 8-bit asymmetric.
  std::uint64_t observed = 0;
  for (int leg = 0; leg < 2; ++leg) {
    dlrm::DlrmModel model(SmallModel());
    const auto rr = RestoreModel(*store, "fallback", model);
    ++observed;

    data::ReaderMaster reader(ds, SmallReader(), rr.reader_state);
    CheckNRun cnr(model, reader, store, Config());
    cnr.SetProgress(rr.batches_trained, rr.samples_trained);
    cnr.SetNextCheckpointId(rr.checkpoint_id + 1);
    for (std::uint64_t i = 0; i < observed; ++i) cnr.OnRestartObserved();

    const int expected_bits = observed > Config().expected_restarts ? 8 : 2;
    EXPECT_EQ(cnr.EffectiveQuantConfig().bits, expected_bits) << "leg " << leg;
    cnr.Run(2);

    const auto m =
        LoadManifest(*store, "fallback", *LatestCheckpointId(*store, "fallback"));
    EXPECT_EQ(m.quant.bits, expected_bits) << "leg " << leg;
    if (expected_bits == 8) {
      EXPECT_EQ(m.quant.method, quant::Method::kAsymmetric);
    }
  }

  // The mixed-precision lineage must still restore.
  dlrm::DlrmModel final_model(SmallModel());
  const auto rr = RestoreModel(*store, "fallback", final_model);
  EXPECT_EQ(rr.batches_trained, 6u * 4u);  // 3 legs x 2 intervals x 4 batches
}

TEST(FallbackIntegration, StaticConfigIgnoresRestarts) {
  data::SyntheticDataset ds(MatchingDataset());
  auto store = std::make_shared<storage::InMemoryStore>();
  dlrm::DlrmModel model(SmallModel());
  data::ReaderMaster reader(ds, SmallReader());

  auto cfg = Config();
  cfg.dynamic_bitwidth = false;
  cfg.quant.method = quant::Method::kKMeans;
  cfg.quant.bits = 3;
  cfg.quant.kmeans_iters = 5;
  CheckNRun cnr(model, reader, store, cfg);
  for (int i = 0; i < 5; ++i) cnr.OnRestartObserved();
  EXPECT_EQ(cnr.EffectiveQuantConfig().method, quant::Method::kKMeans);
  EXPECT_EQ(cnr.EffectiveQuantConfig().bits, 3);
  cnr.Run(1);
  const auto m = LoadManifest(*store, "fallback", 1);
  EXPECT_EQ(m.quant.method, quant::Method::kKMeans);
  EXPECT_EQ(m.quant.bits, 3);
}

}  // namespace
}  // namespace cnr::core
