#include "quant/adaptive.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace cnr::quant {
namespace {

// A spread-out bulk plus one outlier. The bulk's standard deviation must be
// comparable to the quantization step for range clipping to pay off: if the
// bulk is extremely tight, every bulk value already snaps to the grid point
// at xmin and clipping only adds outlier error (the greedy search correctly
// keeps the full range in that regime).
std::vector<float> RowWithOutlier(util::Rng& rng, std::size_t n, float outlier) {
  std::vector<float> row(n);
  for (auto& v : row) v = 0.4f * static_cast<float>(rng.NextGaussian());
  row[n / 2] = outlier;
  return row;
}

TEST(Adaptive, NeverWorseThanNaiveAsymmetric) {
  util::Rng rng(1);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<float> row(64);
    for (auto& v : row) v = static_cast<float>(rng.NextGaussian()) * 0.1f;
    for (const int bits : {2, 3, 4}) {
      const auto naive = AsymmetricParams(row);
      const auto adaptive = AdaptiveAsymmetricParams(row, bits, 25, 1.0);
      EXPECT_LE(UniformRowL2Error(row, bits, adaptive),
                UniformRowL2Error(row, bits, naive) + 1e-9)
          << "trial=" << trial << " bits=" << bits;
    }
  }
}

TEST(Adaptive, ClipsOutliers) {
  util::Rng rng(2);
  const auto row = RowWithOutlier(rng, 64, 2.0f);
  const auto p = AdaptiveAsymmetricParams(row, 2, 25, 1.0);
  // The optimal clipping range should exclude most of the outlier's reach.
  EXPECT_LT(p.xmax, 2.0f);
  const double adaptive_err = UniformRowL2Error(row, 2, p);
  const double naive_err = UniformRowL2Error(row, 2, AsymmetricParams(row));
  EXPECT_LT(adaptive_err, naive_err * 0.9);
}

TEST(Adaptive, ConstantRowReturnsFullRange) {
  const std::vector<float> row(16, 2.0f);
  const auto p = AdaptiveAsymmetricParams(row, 4, 25, 1.0);
  EXPECT_FLOAT_EQ(p.xmin, 2.0f);
  EXPECT_FLOAT_EQ(p.xmax, 2.0f);
}

TEST(Adaptive, RatioZeroEqualsNaive) {
  util::Rng rng(3);
  std::vector<float> row(32);
  for (auto& v : row) v = static_cast<float>(rng.NextGaussian());
  const auto p0 = AdaptiveAsymmetricParams(row, 4, 25, 0.0);
  const auto naive = AsymmetricParams(row);
  EXPECT_FLOAT_EQ(p0.xmin, naive.xmin);
  EXPECT_FLOAT_EQ(p0.xmax, naive.xmax);
}

TEST(Adaptive, LargerRatioNeverWorse) {
  util::Rng rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    const auto row = RowWithOutlier(rng, 64, 2.0f);
    double prev = 1e18;
    for (const double ratio : {0.0, 0.3, 0.6, 1.0}) {
      const auto p = AdaptiveAsymmetricParams(row, 3, 30, ratio);
      const double err = UniformRowL2Error(row, 3, p);
      EXPECT_LE(err, prev + 1e-9) << "ratio=" << ratio;
      prev = err;
    }
  }
}

TEST(Adaptive, InvalidArgsThrow) {
  const std::vector<float> row = {1.0f, 2.0f};
  EXPECT_THROW(AdaptiveAsymmetricParams(row, 4, 0, 1.0), std::invalid_argument);
  EXPECT_THROW(AdaptiveAsymmetricParams(row, 4, 10, -0.1), std::invalid_argument);
  EXPECT_THROW(AdaptiveAsymmetricParams(row, 4, 10, 1.1), std::invalid_argument);
}

TEST(Adaptive, RangeStaysWithinOriginal) {
  util::Rng rng(5);
  std::vector<float> row(48);
  for (auto& v : row) v = static_cast<float>(rng.NextGaussian());
  const auto naive = AsymmetricParams(row);
  const auto p = AdaptiveAsymmetricParams(row, 2, 20, 1.0);
  EXPECT_GE(p.xmin, naive.xmin);
  EXPECT_LE(p.xmax, naive.xmax);
  EXPECT_LE(p.xmin, p.xmax);
}

// Property sweep (paper Fig 10 shape): improvement over naive asymmetric is
// larger for lower bit-widths on outlier-heavy rows.
TEST(Adaptive, LowerBitsGainMore) {
  util::Rng rng(6);
  double improvements[3] = {0, 0, 0};
  constexpr int kTrials = 20;
  for (int trial = 0; trial < kTrials; ++trial) {
    const auto row = RowWithOutlier(rng, 64, 3.0f);
    const int bit_list[3] = {2, 3, 4};
    for (int b = 0; b < 3; ++b) {
      const double naive = UniformRowL2Error(row, bit_list[b], AsymmetricParams(row));
      const double adapt = UniformRowL2Error(
          row, bit_list[b], AdaptiveAsymmetricParams(row, bit_list[b], 25, 1.0));
      improvements[b] += (naive - adapt) / naive;
    }
  }
  EXPECT_GT(improvements[0], improvements[2]);  // 2-bit gains more than 4-bit
}

// The historical implementation, verbatim: the greedy search driven by
// UniformRowL2Error round trips. The kernel-backed search must select exactly
// the same params — same codes, same double-precision error fold, so every
// <=/< comparison in the loop resolves identically.
RowParams LegacyAdaptiveAsymmetricParams(std::span<const float> row, int bits, int num_bins,
                                         double ratio) {
  const RowParams full = AsymmetricParams(row);
  const float range = full.xmax - full.xmin;
  if (range <= 0.0f) return full;
  const float step = range / static_cast<float>(num_bins);
  RowParams best = full;
  double best_err = UniformRowL2Error(row, bits, full);
  RowParams cur = full;
  while ((cur.xmax - cur.xmin) > range * (1.0 - ratio) + step) {
    const RowParams lo_shrunk{cur.xmin + step, cur.xmax};
    const RowParams hi_shrunk{cur.xmin, cur.xmax - step};
    const double err_lo = UniformRowL2Error(row, bits, lo_shrunk);
    const double err_hi = UniformRowL2Error(row, bits, hi_shrunk);
    if (err_lo <= err_hi) {
      cur = lo_shrunk;
      if (err_lo < best_err) {
        best_err = err_lo;
        best = cur;
      }
    } else {
      cur = hi_shrunk;
      if (err_hi < best_err) {
        best_err = err_hi;
        best = cur;
      }
    }
  }
  return best;
}

TEST(Adaptive, SelectionUnchangedVsLegacyImplementation) {
  util::Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    const auto row = RowWithOutlier(rng, 64, 2.5f);
    for (const int bits : {2, 3, 4, 8}) {
      for (const double ratio : {0.3, 1.0}) {
        const auto legacy = LegacyAdaptiveAsymmetricParams(row, bits, 25, ratio);
        const auto now = AdaptiveAsymmetricParams(row, bits, 25, ratio);
        EXPECT_EQ(legacy.xmin, now.xmin) << "trial=" << trial << " bits=" << bits;
        EXPECT_EQ(legacy.xmax, now.xmax) << "trial=" << trial << " bits=" << bits;
      }
    }
  }
}

class AdaptiveBinsTest : public ::testing::TestWithParam<int> {};

TEST_P(AdaptiveBinsTest, MoreBinsRefineOrMatch) {
  const int bins = GetParam();
  util::Rng rng(bins);
  const auto row = RowWithOutlier(rng, 64, 4.0f);
  const auto coarse = AdaptiveAsymmetricParams(row, 2, bins, 1.0);
  const auto fine = AdaptiveAsymmetricParams(row, 2, bins * 4, 1.0);
  // Finer steps can only find equal-or-better clipping (same search family).
  EXPECT_LE(UniformRowL2Error(row, 2, fine), UniformRowL2Error(row, 2, coarse) * 1.10);
}

INSTANTIATE_TEST_SUITE_P(Bins, AdaptiveBinsTest, ::testing::Values(5, 10, 25));

}  // namespace
}  // namespace cnr::quant
