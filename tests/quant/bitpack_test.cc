#include "quant/bitpack.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace cnr::quant {
namespace {

TEST(BitPack, PackedBytesMath) {
  EXPECT_EQ(PackedBytes(0, 4), 0u);
  EXPECT_EQ(PackedBytes(1, 4), 1u);
  EXPECT_EQ(PackedBytes(2, 4), 1u);
  EXPECT_EQ(PackedBytes(3, 4), 2u);
  EXPECT_EQ(PackedBytes(8, 1), 1u);
  EXPECT_EQ(PackedBytes(9, 1), 2u);
  EXPECT_EQ(PackedBytes(5, 8), 5u);
  EXPECT_EQ(PackedBytes(3, 3), 2u);  // 9 bits -> 2 bytes
}

TEST(BitPack, InvalidBitsThrow) {
  EXPECT_THROW(BitPacker(0), std::invalid_argument);
  EXPECT_THROW(BitPacker(33), std::invalid_argument);
  std::vector<std::uint8_t> buf(1);
  EXPECT_THROW(BitUnpacker(buf, 0), std::invalid_argument);
  EXPECT_THROW(BitUnpacker(buf, 33), std::invalid_argument);
}

TEST(BitPack, FullWidth32RoundTrip) {
  // Regression: BitUnpacker::Next used a 32-bit accumulator and computed its
  // mask as (1u << bits) - 1, which is undefined at bits == 32.
  const std::uint32_t values[] = {0u, 1u, 0x7FFFFFFFu, 0x80000000u, 0xFFFFFFFFu, 0xDEADBEEFu};
  BitPacker p(32);
  for (const auto v : values) p.Append(v);
  const auto bytes = p.Finish();
  ASSERT_EQ(bytes.size(), sizeof(values));
  BitUnpacker u(bytes, 32);
  for (const auto v : values) EXPECT_EQ(u.Next(), v);
}

TEST(BitPack, WideWidthsRoundTrip) {
  util::Rng rng(7);
  for (const int bits : {9, 12, 17, 24, 31, 32}) {
    const std::uint64_t span = (bits == 32) ? 0x100000000ULL : (1ULL << bits);
    std::vector<std::uint32_t> codes(129);
    BitPacker p(bits);
    for (auto& c : codes) {
      c = static_cast<std::uint32_t>(rng.NextBounded(span));
      p.Append(c);
    }
    const auto bytes = p.Finish();
    EXPECT_EQ(bytes.size(), PackedBytes(codes.size(), bits));
    BitUnpacker u(bytes, bits);
    for (std::size_t i = 0; i < codes.size(); ++i) {
      EXPECT_EQ(u.Next(), codes[i]) << "bits=" << bits << " i=" << i;
    }
  }
}

TEST(BitPack, BulkMatchesPerCode) {
  // AppendCodes/NextCodes ride the wide kernels; the byte stream and the
  // decoded codes must be indistinguishable from the per-code path, including
  // when the stream is mid-byte at the bulk call.
  util::Rng rng(11);
  for (const int bits : {1, 3, 4, 5, 7, 8}) {
    const std::uint32_t max_code = (1u << bits) - 1;
    for (const std::size_t lead : {std::size_t{0}, std::size_t{1}, std::size_t{3}}) {
      std::vector<std::uint32_t> codes(67);
      for (auto& c : codes) c = static_cast<std::uint32_t>(rng.NextBounded(max_code + 1));

      BitPacker per_code(bits);
      for (const auto c : codes) per_code.Append(c);
      const auto expect = per_code.Finish();

      BitPacker bulk(bits);
      for (std::size_t i = 0; i < lead; ++i) bulk.Append(codes[i]);
      bulk.AppendCodes(std::span(codes).subspan(lead));
      EXPECT_EQ(bulk.Finish(), expect) << "bits=" << bits << " lead=" << lead;

      BitUnpacker u(expect, bits);
      std::vector<std::uint32_t> out(codes.size());
      for (std::size_t i = 0; i < lead; ++i) out[i] = u.Next();
      u.NextCodes(std::span(out).subspan(lead));
      EXPECT_EQ(out, codes) << "bits=" << bits << " lead=" << lead;
    }
  }
}

TEST(BitPack, BulkCodeExceedingWidthThrows) {
  BitPacker p(3);
  const std::uint32_t codes[] = {1, 2, 8};
  EXPECT_THROW(p.AppendCodes(codes), std::invalid_argument);
}

TEST(BitPack, CodeExceedingWidthThrows) {
  BitPacker p(2);
  EXPECT_THROW(p.Append(4), std::invalid_argument);
  p.Append(3);  // max for 2 bits
}

TEST(BitPack, KnownLayout4Bit) {
  BitPacker p(4);
  p.Append(0x1);
  p.Append(0x2);
  p.Append(0xF);
  const auto bytes = p.Finish();
  ASSERT_EQ(bytes.size(), 2u);
  EXPECT_EQ(bytes[0], 0x21);  // LSB-first: first code in low nibble
  EXPECT_EQ(bytes[1], 0x0F);
}

TEST(BitPack, ExhaustedUnpackerThrows) {
  BitPacker p(8);
  p.Append(7);
  const auto bytes = p.Finish();
  BitUnpacker u(bytes, 8);
  EXPECT_EQ(u.Next(), 7u);
  EXPECT_THROW(u.Next(), std::out_of_range);
}

TEST(BitPack, EmptyFinish) {
  BitPacker p(3);
  EXPECT_TRUE(p.Finish().empty());
}

class BitPackRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(BitPackRoundTripTest, RandomCodesRoundTrip) {
  const int bits = GetParam();
  util::Rng rng(bits * 101);
  const std::uint32_t max_code = (1u << bits) - 1;
  for (const std::size_t count : {1u, 2u, 7u, 8u, 63u, 64u, 1000u}) {
    std::vector<std::uint32_t> codes(count);
    BitPacker p(bits);
    for (auto& c : codes) {
      c = static_cast<std::uint32_t>(rng.NextBounded(max_code + 1));
      p.Append(c);
    }
    const auto bytes = p.Finish();
    EXPECT_EQ(bytes.size(), PackedBytes(count, bits));
    BitUnpacker u(bytes, bits);
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_EQ(u.Next(), codes[i]) << "bits=" << bits << " i=" << i;
    }
  }
}

TEST_P(BitPackRoundTripTest, AllMaxCodes) {
  const int bits = GetParam();
  const std::uint32_t max_code = (1u << bits) - 1;
  BitPacker p(bits);
  for (int i = 0; i < 100; ++i) p.Append(max_code);
  const auto bytes = p.Finish();
  BitUnpacker u(bytes, bits);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(u.Next(), max_code);
}

INSTANTIATE_TEST_SUITE_P(Widths, BitPackRoundTripTest, ::testing::Range(1, 9));

}  // namespace
}  // namespace cnr::quant
