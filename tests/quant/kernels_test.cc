// Differential coverage for the batch codec kernels (quant/kernels.h).
//
// Two invariants, both load-bearing for the on-disk format:
//   1. Scalar and AVX2 kernels are bit-identical — same codes, same packed
//      bytes, same decoded floats — across adversarial inputs (NaN/inf,
//      denormals, signed zeros, exact rounding ties, every tail length that
//      crosses an 8-wide group boundary).
//   2. Whatever kernel is active, EncodeRow/DecodeRow produce exactly the
//      bytes of the historical per-element implementation (the stored format
//      must not depend on this PR or on which CPU encoded a chunk).
#include "quant/kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "quant/adaptive.h"
#include "quant/bitpack.h"
#include "quant/quantizer.h"
#include "util/rng.h"

namespace cnr::quant {
namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();
constexpr float kNaN = std::numeric_limits<float>::quiet_NaN();
constexpr float kDenorm = std::numeric_limits<float>::denorm_min();

// Bitwise float equality: NaN == NaN, +0 != -0 (stricter than ==).
bool SameBits(float a, float b) {
  std::uint32_t ua, ub;
  std::memcpy(&ua, &a, sizeof(ua));
  std::memcpy(&ub, &b, sizeof(ub));
  return ua == ub;
}

std::vector<std::vector<float>> AdversarialRows() {
  std::vector<std::vector<float>> rows;
  rows.push_back({});                               // empty
  rows.push_back({0.42f});                          // single element
  rows.push_back(std::vector<float>(19, 3.25f));    // constant
  rows.push_back(std::vector<float>(16, 0.0f));     // constant zero
  rows.push_back({-0.0f, 0.0f, -0.0f, 0.0f, -0.0f, 0.0f, -0.0f, 0.0f, 0.0f, -0.0f});
  rows.push_back({kDenorm, -kDenorm, 2 * kDenorm, -3 * kDenorm, kDenorm, kDenorm,
                  -kDenorm, kDenorm, -2 * kDenorm});
  rows.push_back({kInf, -kInf, 1.0f, -1.0f, kInf, 0.5f, -kInf, 2.0f, 3.0f});
  rows.push_back({kNaN, 1.0f, -1.0f, kNaN, 0.0f, kNaN, 2.0f, -2.0f, kNaN});
  rows.push_back({1.0f, 2.0f, kNaN, 4.0f, 5.0f, 6.0f, 7.0f, 8.0f});  // NaN mid-lane
  // Exact rounding ties: with params {0, qmax} the scale is 1, so x = k + 0.5
  // hits a tie for every k — where half-even and half-away diverge.
  {
    std::vector<float> ties;
    for (int k = 0; k < 24; ++k) ties.push_back(static_cast<float>(k) + 0.5f);
    rows.push_back(std::move(ties));
  }
  // Near-tie values that must NOT round up (the floor(x + 0.5) trap).
  rows.push_back(std::vector<float>(12, 0.49999997f));
  // Random rows at every length 0..67: crosses the 8-wide kernel groups and
  // every bitpack word/tail boundary.
  util::Rng rng(42);
  for (std::size_t len = 0; len <= 67; ++len) {
    std::vector<float> row(len);
    for (auto& v : row) {
      v = static_cast<float>(rng.NextBounded(20000)) / 100.0f - 100.0f;
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

TEST(CodecKernels, ScalarVsSimdBitIdentical) {
  const CodecKernels& scalar = ScalarCodecKernels();
  const CodecKernels* simd = Avx2CodecKernelsOrNull();
  if (simd == nullptr) GTEST_SKIP() << "no AVX2 on this machine";

  for (const auto& row : AdversarialRows()) {
    const std::span<const float> span(row);
    // Parameter scans.
    EXPECT_TRUE(SameBits(scalar.abs_max(row.data(), row.size()),
                         simd->abs_max(row.data(), row.size())))
        << "abs_max, len=" << row.size();
    if (!row.empty()) {
      float slo, shi, vlo, vhi;
      scalar.min_max(row.data(), row.size(), &slo, &shi);
      simd->min_max(row.data(), row.size(), &vlo, &vhi);
      EXPECT_TRUE(SameBits(slo, vlo) && SameBits(shi, vhi))
          << "min_max, len=" << row.size() << " scalar=[" << slo << "," << shi
          << "] simd=[" << vlo << "," << vhi << "]";
    }
    for (int bits = 1; bits <= 8; ++bits) {
      // Quantize under both a data-derived range and the tie-provoking
      // integer range {0, qmax}.
      const RowParams data_p = AsymmetricParams(span);
      const RowParams tie_p{0.0f, static_cast<float>((1u << bits) - 1)};
      for (const RowParams& p : {data_p, tie_p}) {
        std::vector<std::uint32_t> sc(row.size()), vc(row.size());
        QuantizeRowCodes(scalar, span, bits, p, sc.data());
        QuantizeRowCodes(*simd, span, bits, p, vc.data());
        EXPECT_EQ(sc, vc) << "codes, len=" << row.size() << " bits=" << bits;
        std::vector<float> sd(row.size()), vd(row.size());
        DequantizeRowCodes(scalar, sc.data(), sc.size(), bits, p, sd.data());
        DequantizeRowCodes(*simd, sc.data(), sc.size(), bits, p, vd.data());
        for (std::size_t i = 0; i < row.size(); ++i) {
          EXPECT_TRUE(SameBits(sd[i], vd[i]))
              << "dequant, len=" << row.size() << " bits=" << bits << " i=" << i;
        }
      }
    }
  }
}

// The historical per-element uniform encoder, verbatim: QuantizeOne +
// BitPacker::Append. EncodeRow must keep producing exactly these bytes.
void LegacyEncodeUniform(util::Writer& w, std::span<const float> row, int bits,
                         const RowParams& p) {
  w.Put<float>(p.xmin);
  w.Put<float>(p.xmax);
  const UniformScale s = MakeUniformScale(bits, p.xmin, p.xmax);
  BitPacker packer(bits);
  for (const float x : row) packer.Append(QuantizeOneCode(x, p.xmin, s.inv_scale, s.qmax));
  const auto bytes = packer.Finish();
  w.PutBytes(bytes.data(), bytes.size());
}

bool AllFinite(std::span<const float> row) {
  for (const float v : row) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

TEST(CodecKernels, EncodeRowMatchesLegacyBytes) {
  util::Rng rng(7);
  for (const auto& row : AdversarialRows()) {
    // Non-finite rows had undefined encodings before (casting an unrounded
    // NaN/huge float); the differential test above pins them now.
    if (!AllFinite(row)) continue;
    const std::span<const float> span(row);
    for (int bits = 1; bits <= 8; ++bits) {
      for (const Method m :
           {Method::kSymmetric, Method::kAsymmetric, Method::kAdaptiveAsymmetric}) {
        QuantConfig cfg;
        cfg.method = m;
        cfg.bits = bits;
        util::Writer now;
        EncodeRow(now, span, cfg, rng);

        RowParams p;
        if (m == Method::kSymmetric) {
          p = SymmetricParams(span);
        } else if (m == Method::kAsymmetric) {
          p = AsymmetricParams(span);
        } else {
          p = AdaptiveAsymmetricParams(span, bits, cfg.num_bins, cfg.ratio);
        }
        util::Writer legacy;
        LegacyEncodeUniform(legacy, span, bits, p);
        EXPECT_EQ(now.bytes(), legacy.bytes())
            << MethodName(m) << " bits=" << bits << " len=" << row.size();

        // And decode reproduces the legacy per-element reconstruction.
        util::Reader r(now.bytes());
        std::vector<float> out(row.size());
        DecodeRow(r, cfg, out);
        const UniformScale s = MakeUniformScale(bits, p.xmin, p.xmax);
        util::Reader lr(legacy.bytes());
        RowParams lp;
        lp.xmin = lr.Get<float>();
        lp.xmax = lr.Get<float>();
        std::vector<std::uint8_t> packed(PackedBytes(row.size(), bits));
        lr.GetBytes(packed.data(), packed.size());
        BitUnpacker u(packed, bits);
        for (std::size_t i = 0; i < row.size(); ++i) {
          const float want = s.scale * static_cast<float>(u.Next()) + lp.xmin;
          EXPECT_TRUE(SameBits(out[i], want))
              << MethodName(m) << " bits=" << bits << " i=" << i;
        }
      }
    }
  }
}

TEST(CodecKernels, PackUnpackAllWidthsAndLengths) {
  util::Rng rng(13);
  for (int bits = 1; bits <= 8; ++bits) {
    const std::uint32_t max_code = (1u << bits) - 1;
    for (std::size_t len = 0; len <= 67; ++len) {
      std::vector<std::uint32_t> codes(len);
      for (auto& c : codes) c = static_cast<std::uint32_t>(rng.NextBounded(max_code + 1));
      std::vector<std::uint8_t> packed(PackedBytes(len, bits), 0xAB);
      PackCodes(codes.data(), len, bits, packed.data());
      // Must byte-match the per-code packer.
      BitPacker p(bits);
      for (const auto c : codes) p.Append(c);
      EXPECT_EQ(packed, p.Finish()) << "bits=" << bits << " len=" << len;
      std::vector<std::uint32_t> back(len, 0xFFFFFFFFu);
      UnpackCodes(packed.data(), len, bits, back.data());
      EXPECT_EQ(back, codes) << "bits=" << bits << " len=" << len;
    }
  }
}

TEST(CodecKernels, ScratchReusesBuffersAcrossRows) {
  CodecScratch scratch;
  util::Rng rng(3);
  QuantConfig cfg;  // asymmetric, 4 bits
  std::vector<float> row(64);
  for (auto& v : row) v = static_cast<float>(rng.NextBounded(1000)) / 10.0f;
  util::Writer w;
  EncodeRow(w, row, cfg, rng, scratch);
  const std::uint64_t warm = scratch.grow_events;
  EXPECT_GT(warm, 0u);
  for (int i = 0; i < 100; ++i) {
    util::Writer w2;
    EncodeRow(w2, row, cfg, rng, scratch);
    util::Reader r(w2.bytes());
    std::vector<float> out(row.size());
    DecodeRow(r, cfg, out, scratch);
  }
  EXPECT_EQ(scratch.grow_events, warm) << "scratch kept growing after warm-up";
}

TEST(CodecKernels, ActiveKernelsRespectEnvToggle) {
  // Whatever was selected, the name is one of the two tables and consistent
  // with the env toggle (the toggle itself is exercised by the
  // CNR_DISABLE_SIMD CI leg, where this asserts the scalar table won).
  const CodecKernels& k = ActiveCodecKernels();
  if (SimdDisabledByEnv() || Avx2CodecKernelsOrNull() == nullptr) {
    EXPECT_STREQ(k.name, "scalar");
  } else {
    EXPECT_STREQ(k.name, "avx2");
  }
}

TEST(CodecKernels, MakeUniformScaleDegenerateRanges) {
  for (const auto& [lo, hi] : std::vector<std::pair<float, float>>{
           {0.0f, 0.0f}, {1.0f, 1.0f}, {5.0f, 1.0f}, {-kInf, kInf}, {kNaN, kNaN}}) {
    const UniformScale s = MakeUniformScale(4, lo, hi);
    EXPECT_EQ(s.scale, 1.0f) << lo << "," << hi;
    EXPECT_EQ(s.qmax, 15u);
  }
  EXPECT_THROW(MakeUniformScale(0, 0.0f, 1.0f), std::invalid_argument);
  EXPECT_THROW(MakeUniformScale(9, 0.0f, 1.0f), std::invalid_argument);
}

}  // namespace
}  // namespace cnr::quant
