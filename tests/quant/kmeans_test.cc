#include "quant/kmeans.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "quant/quantizer.h"
#include "util/rng.h"

namespace cnr::quant {
namespace {

TEST(KMeans, ExactWhenFewDistinctValues) {
  util::Rng rng(1);
  // 4 distinct values, 2-bit quantization (4 clusters) -> zero error.
  std::vector<float> row;
  for (int i = 0; i < 32; ++i) row.push_back(static_cast<float>(i % 4) * 0.25f);
  const auto km = KMeansQuantizeRow(row, 2, 15, rng);
  EXPECT_DOUBLE_EQ(KMeansRowL2Error(row, km), 0.0);
  for (std::size_t i = 0; i < row.size(); ++i) {
    EXPECT_FLOAT_EQ(km.codebook[km.codes[i]], row[i]);
  }
}

TEST(KMeans, CodesWithinCodebook) {
  util::Rng rng(2);
  std::vector<float> row(100);
  for (auto& v : row) v = static_cast<float>(rng.NextGaussian());
  const auto km = KMeansQuantizeRow(row, 3, 15, rng);
  EXPECT_LE(km.codebook.size(), 8u);
  for (const auto c : km.codes) EXPECT_LT(c, km.codebook.size());
}

TEST(KMeans, AssignsNearestCentroid) {
  util::Rng rng(3);
  std::vector<float> row(64);
  for (auto& v : row) v = static_cast<float>(rng.NextGaussian());
  const auto km = KMeansQuantizeRow(row, 4, 15, rng);
  for (std::size_t i = 0; i < row.size(); ++i) {
    const float assigned = std::fabs(row[i] - km.codebook[km.codes[i]]);
    for (const float c : km.codebook) {
      EXPECT_LE(assigned, std::fabs(row[i] - c) + 1e-5f);
    }
  }
}

TEST(KMeans, CodebookSorted) {
  util::Rng rng(4);
  std::vector<float> row(128);
  for (auto& v : row) v = static_cast<float>(rng.NextGaussian());
  const auto km = KMeansQuantizeRow(row, 4, 15, rng);
  EXPECT_TRUE(std::is_sorted(km.codebook.begin(), km.codebook.end()));
}

TEST(KMeans, BeatsUniformOnClusteredData) {
  util::Rng rng(5);
  // Bimodal data: two tight clusters far apart. Uniform quantization wastes
  // levels on the empty middle; k-means does not.
  std::vector<float> row;
  for (int i = 0; i < 32; ++i) {
    row.push_back(-1.0f + 0.01f * static_cast<float>(rng.NextGaussian()));
    row.push_back(1.0f + 0.01f * static_cast<float>(rng.NextGaussian()));
  }
  const auto km = KMeansQuantizeRow(row, 2, 15, rng);
  const double km_err = KMeansRowL2Error(row, km);
  const double uni_err = UniformRowL2Error(row, 2, AsymmetricParams(row));
  EXPECT_LT(km_err, uni_err);
}

TEST(KMeans, EmptyRow) {
  util::Rng rng(6);
  const std::vector<float> row;
  const auto km = KMeansQuantizeRow(row, 2, 5, rng);
  EXPECT_TRUE(km.codes.empty());
}

TEST(KMeans, BadBitsThrows) {
  util::Rng rng(7);
  const std::vector<float> row = {1.0f};
  EXPECT_THROW(KMeansQuantizeRow(row, 0, 5, rng), std::invalid_argument);
  EXPECT_THROW(KMeansQuantizeRow(row, 9, 5, rng), std::invalid_argument);
}

TEST(KMeans, MoreIterationsDoNotHurt) {
  util::Rng rng1(8), rng2(8);
  std::vector<float> row(200);
  util::Rng data_rng(9);
  for (auto& v : row) v = static_cast<float>(data_rng.NextGaussian());
  const auto km1 = KMeansQuantizeRow(row, 3, 1, rng1);
  const auto km15 = KMeansQuantizeRow(row, 3, 15, rng2);
  EXPECT_LE(KMeansRowL2Error(row, km15), KMeansRowL2Error(row, km1) + 1e-9);
}

class KMeansBitsTest : public ::testing::TestWithParam<int> {};

TEST_P(KMeansBitsTest, ErrorDecreasesWithBits) {
  const int bits = GetParam();
  util::Rng rng(bits * 17);
  std::vector<float> row(256);
  util::Rng data_rng(10);
  for (auto& v : row) v = static_cast<float>(data_rng.NextGaussian()) * 0.05f;

  util::Rng rng_a(11), rng_b(11);
  const auto low = KMeansQuantizeRow(row, bits, 15, rng_a);
  const auto high = KMeansQuantizeRow(row, bits + 1, 15, rng_b);
  EXPECT_LE(KMeansRowL2Error(row, high), KMeansRowL2Error(row, low) * 1.05);
}

INSTANTIATE_TEST_SUITE_P(Bits, KMeansBitsTest, ::testing::Values(2, 3, 4));

}  // namespace
}  // namespace cnr::quant
