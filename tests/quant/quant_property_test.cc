// Cross-cutting property sweeps over the quantization stack: every
// (method, bits, dim) combination must round-trip within its analytic error
// bound, shrink monotonically with bit-width, and agree byte-for-byte with
// its declared encoded size. These are the invariants the checkpoint format
// relies on regardless of model configuration.
#include <gtest/gtest.h>

#include <cmath>

#include "quant/adaptive.h"
#include "quant/error.h"
#include "quant/quantizer.h"
#include "util/rng.h"

namespace cnr::quant {
namespace {

struct Case {
  Method method;
  int bits;
  std::size_t dim;
};

std::string CaseName(const ::testing::TestParamInfo<Case>& info) {
  std::string name = MethodName(info.param.method) + "_" +
                     std::to_string(info.param.bits) + "b_d" +
                     std::to_string(info.param.dim);
  for (auto& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

class QuantSweepTest : public ::testing::TestWithParam<Case> {
 protected:
  QuantConfig Config() const {
    QuantConfig cfg;
    cfg.method = GetParam().method;
    cfg.bits = GetParam().bits;
    cfg.num_bins = 15;
    cfg.ratio = 1.0;
    cfg.kmeans_iters = 8;
    return cfg;
  }

  std::vector<float> MakeRow(util::Rng& rng, std::size_t dim) const {
    std::vector<float> row(dim);
    for (auto& v : row) v = 0.1f * static_cast<float>(rng.NextGaussian());
    if (dim > 2 && rng.NextBool(0.5)) row[dim / 2] = rng.NextFloat(-1.0f, 1.0f);
    return row;
  }
};

TEST_P(QuantSweepTest, RoundTripWithinRange) {
  util::Rng rng(GetParam().bits * 1000 + GetParam().dim);
  for (int trial = 0; trial < 10; ++trial) {
    const auto row = MakeRow(rng, GetParam().dim);
    const auto rec = RoundTrip(row, Config(), rng);
    ASSERT_EQ(rec.size(), row.size());
    const auto p = AsymmetricParams(row);
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (GetParam().method == Method::kNone) {
        EXPECT_EQ(rec[i], row[i]);
      } else {
        // Reconstruction never exceeds the row's value range by more than
        // a rounding step (clipping methods pull inward, never outward
        // beyond symmetric's mirrored bound).
        const float slack = (p.xmax - p.xmin) + 1e-6f;
        EXPECT_GE(rec[i], -std::fabs(p.xmin) - std::fabs(p.xmax) - slack);
        EXPECT_LE(std::fabs(rec[i] - row[i]), slack);
      }
    }
  }
}

TEST_P(QuantSweepTest, EncodedSizeExact) {
  util::Rng rng(GetParam().bits * 77 + GetParam().dim);
  const auto row = MakeRow(rng, GetParam().dim);
  util::Writer w;
  EncodeRow(w, row, Config(), rng);
  EXPECT_EQ(w.size(), EncodedRowBytes(Config(), row.size()));
}

TEST_P(QuantSweepTest, DecodeConsumesExactlyEncodedBytes) {
  util::Rng rng(GetParam().bits * 31 + GetParam().dim);
  const auto row = MakeRow(rng, GetParam().dim);
  // Encode two rows back to back; decoding the first must position the
  // reader exactly at the second (chunk decoding depends on this).
  util::Writer w;
  EncodeRow(w, row, Config(), rng);
  const auto second = MakeRow(rng, GetParam().dim);
  EncodeRow(w, second, Config(), rng);

  util::Reader r(w.bytes());
  std::vector<float> out(row.size());
  DecodeRow(r, Config(), out);
  EXPECT_EQ(r.position(), EncodedRowBytes(Config(), row.size()));
  DecodeRow(r, Config(), out);
  EXPECT_TRUE(r.AtEnd());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, QuantSweepTest,
    ::testing::Values(
        Case{Method::kNone, 4, 16}, Case{Method::kSymmetric, 2, 8},
        Case{Method::kSymmetric, 8, 64}, Case{Method::kAsymmetric, 2, 1},
        Case{Method::kAsymmetric, 3, 16}, Case{Method::kAsymmetric, 8, 128},
        Case{Method::kAdaptiveAsymmetric, 2, 16}, Case{Method::kAdaptiveAsymmetric, 4, 64},
        Case{Method::kKMeans, 2, 16}, Case{Method::kKMeans, 4, 64},
        Case{Method::kKMeans, 8, 8}),
    CaseName);

// Error monotonicity in bit-width holds for every method on the same data.
class BitsMonotoneTest : public ::testing::TestWithParam<Method> {};

TEST_P(BitsMonotoneTest, ErrorNonIncreasingInBits) {
  util::Rng data_rng(5);
  tensor::EmbeddingTable table("t", 64, 32);
  for (std::size_t r = 0; r < 64; ++r) {
    std::vector<float> row(32);
    for (auto& v : row) v = 0.1f * static_cast<float>(data_rng.NextGaussian());
    table.RestoreRow(r, row, 0.0f);
  }
  double prev = 1e18;
  for (const int bits : {2, 3, 4, 6, 8}) {
    util::Rng rng(9);
    QuantConfig cfg;
    cfg.method = GetParam();
    cfg.bits = bits;
    cfg.num_bins = 15;
    cfg.kmeans_iters = 8;
    const double err = MeanL2Error(table, cfg, rng);
    EXPECT_LE(err, prev * 1.02) << "bits=" << bits;  // small tolerance: kmeans init noise
    prev = err;
  }
}

INSTANTIATE_TEST_SUITE_P(Methods, BitsMonotoneTest,
                         ::testing::Values(Method::kSymmetric, Method::kAsymmetric,
                                           Method::kAdaptiveAsymmetric, Method::kKMeans),
                         [](const auto& info) {
                           std::string n = MethodName(info.param);
                           for (auto& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

// Special-value robustness: rows containing exact zeros, duplicated values,
// negatives only, and denormal-scale magnitudes must all round-trip without
// NaN/Inf.
TEST(QuantEdgeCases, SpecialRowsStayFinite) {
  const std::vector<std::vector<float>> rows = {
      {0.0f, 0.0f, 0.0f, 0.0f},
      {-1.0f, -1.0f, -0.5f, -0.25f},
      {1e-30f, -1e-30f, 2e-30f, 0.0f},
      {5.0f, 5.0f, 5.0f, 5.0f},
      {-3.0f, 3.0f, -3.0f, 3.0f},
  };
  util::Rng rng(1);
  for (const auto method : {Method::kSymmetric, Method::kAsymmetric,
                            Method::kAdaptiveAsymmetric, Method::kKMeans}) {
    for (const auto& row : rows) {
      QuantConfig cfg;
      cfg.method = method;
      cfg.bits = 2;
      cfg.num_bins = 10;
      const auto rec = RoundTrip(row, cfg, rng);
      for (const float v : rec) {
        EXPECT_TRUE(std::isfinite(v)) << MethodName(method);
      }
    }
  }
}

TEST(QuantEdgeCases, EmptyRowRoundTrips) {
  util::Rng rng(2);
  const std::vector<float> empty;
  for (const auto method :
       {Method::kNone, Method::kAsymmetric, Method::kAdaptiveAsymmetric, Method::kKMeans}) {
    QuantConfig cfg;
    cfg.method = method;
    cfg.bits = 4;
    const auto rec = RoundTrip(empty, cfg, rng);
    EXPECT_TRUE(rec.empty()) << MethodName(method);
  }
}

}  // namespace
}  // namespace cnr::quant
