#include "quant/quantizer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "quant/adaptive.h"
#include "util/rng.h"

namespace cnr::quant {
namespace {

std::vector<float> GaussianRow(util::Rng& rng, std::size_t n, float scale = 0.1f) {
  std::vector<float> row(n);
  for (auto& v : row) v = static_cast<float>(rng.NextGaussian()) * scale;
  return row;
}

TEST(Params, SymmetricIsSignSymmetric) {
  const std::vector<float> row = {-0.5f, 0.1f, 0.3f};
  const auto p = SymmetricParams(row);
  EXPECT_FLOAT_EQ(p.xmax, 0.5f);
  EXPECT_FLOAT_EQ(p.xmin, -0.5f);
}

TEST(Params, AsymmetricIsTight) {
  const std::vector<float> row = {-0.5f, 0.1f, 0.3f};
  const auto p = AsymmetricParams(row);
  EXPECT_FLOAT_EQ(p.xmin, -0.5f);
  EXPECT_FLOAT_EQ(p.xmax, 0.3f);
}

TEST(Uniform, RoundTripWithinOneStep) {
  util::Rng rng(1);
  const auto row = GaussianRow(rng, 64);
  for (const int bits : {2, 3, 4, 8}) {
    const auto p = AsymmetricParams(row);
    const auto rec = UniformRoundTrip(row, bits, p);
    const float step = (p.xmax - p.xmin) / static_cast<float>((1 << bits) - 1);
    for (std::size_t i = 0; i < row.size(); ++i) {
      EXPECT_LE(std::fabs(rec[i] - row[i]), step * 0.5f + 1e-6f) << "bits=" << bits;
    }
  }
}

TEST(Uniform, EndpointsExact) {
  const std::vector<float> row = {-1.0f, 0.25f, 1.0f};
  const auto p = AsymmetricParams(row);
  const auto rec = UniformRoundTrip(row, 4, p);
  EXPECT_FLOAT_EQ(rec[0], -1.0f);
  EXPECT_FLOAT_EQ(rec[2], 1.0f);
}

TEST(Uniform, ConstantRowIsExact) {
  const std::vector<float> row(16, 0.7f);
  const auto p = AsymmetricParams(row);  // degenerate range
  const auto rec = UniformRoundTrip(row, 2, p);
  for (const float v : rec) EXPECT_FLOAT_EQ(v, 0.7f);
}

TEST(Uniform, MoreBitsLowerError) {
  util::Rng rng(2);
  const auto row = GaussianRow(rng, 256);
  const auto p = AsymmetricParams(row);
  double prev = 1e9;
  for (const int bits : {2, 3, 4, 8}) {
    const double err = UniformRowL2Error(row, bits, p);
    EXPECT_LT(err, prev) << "bits=" << bits;
    prev = err;
  }
}

TEST(Uniform, AsymmetricBeatsSymmetricOnShiftedData) {
  util::Rng rng(3);
  // Shifted distribution: all positive values.
  std::vector<float> row(128);
  for (auto& v : row) v = 0.5f + 0.1f * static_cast<float>(rng.NextGaussian());
  for (const int bits : {2, 3, 4, 8}) {
    const double sym = UniformRowL2Error(row, bits, SymmetricParams(row));
    const double asym = UniformRowL2Error(row, bits, AsymmetricParams(row));
    EXPECT_LT(asym, sym) << "bits=" << bits;
  }
}

TEST(Uniform, L2ErrorMatchesExplicitReconstruction) {
  util::Rng rng(4);
  const auto row = GaussianRow(rng, 100);
  const auto p = AsymmetricParams(row);
  const auto rec = UniformRoundTrip(row, 4, p);
  double acc = 0;
  for (std::size_t i = 0; i < row.size(); ++i) {
    const double d = row[i] - rec[i];
    acc += d * d;
  }
  EXPECT_NEAR(UniformRowL2Error(row, 4, p), std::sqrt(acc), 1e-5);
}

TEST(QuantConfig, SerializeRoundTrip) {
  QuantConfig cfg;
  cfg.method = Method::kAdaptiveAsymmetric;
  cfg.bits = 3;
  cfg.num_bins = 25;
  cfg.ratio = 0.6;
  cfg.kmeans_iters = 10;
  util::Writer w;
  cfg.Serialize(w);
  util::Reader r(w.bytes());
  const auto back = QuantConfig::Deserialize(r);
  EXPECT_EQ(back.method, cfg.method);
  EXPECT_EQ(back.bits, cfg.bits);
  EXPECT_EQ(back.num_bins, cfg.num_bins);
  EXPECT_EQ(back.ratio, cfg.ratio);
  EXPECT_EQ(back.kmeans_iters, cfg.kmeans_iters);
}

TEST(MethodNames, AllNamed) {
  EXPECT_EQ(MethodName(Method::kNone), "none");
  EXPECT_EQ(MethodName(Method::kSymmetric), "symmetric");
  EXPECT_EQ(MethodName(Method::kAsymmetric), "asymmetric");
  EXPECT_EQ(MethodName(Method::kAdaptiveAsymmetric), "adaptive-asymmetric");
  EXPECT_EQ(MethodName(Method::kKMeans), "kmeans");
}

TEST(EncodeRow, NonePassthroughIsExact) {
  util::Rng rng(5);
  const auto row = GaussianRow(rng, 32);
  QuantConfig cfg;
  cfg.method = Method::kNone;
  const auto rec = RoundTrip(row, cfg, rng);
  EXPECT_EQ(rec, row);
}

TEST(EncodeRow, EncodedRowBytesMatchesActual) {
  util::Rng rng(6);
  const auto row = GaussianRow(rng, 48);
  for (const auto method : {Method::kNone, Method::kSymmetric, Method::kAsymmetric,
                            Method::kAdaptiveAsymmetric, Method::kKMeans}) {
    for (const int bits : {2, 4, 8}) {
      QuantConfig cfg;
      cfg.method = method;
      cfg.bits = bits;
      cfg.num_bins = 10;
      cfg.kmeans_iters = 3;
      util::Writer w;
      EncodeRow(w, row, cfg, rng);
      EXPECT_EQ(w.size(), EncodedRowBytes(cfg, row.size()))
          << MethodName(method) << " bits=" << bits;
    }
  }
}

// Round-trip every method; reconstruction must be within the worst-case grid
// error of the row's value range.
class EncodeDecodeTest : public ::testing::TestWithParam<std::tuple<Method, int>> {};

TEST_P(EncodeDecodeTest, ReconstructionBounded) {
  const auto [method, bits] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(bits) * 31 + 7);
  const auto row = GaussianRow(rng, 64);
  QuantConfig cfg;
  cfg.method = method;
  cfg.bits = bits;
  cfg.num_bins = 20;
  cfg.ratio = 1.0;
  cfg.kmeans_iters = 15;

  const auto rec = RoundTrip(row, cfg, rng);
  ASSERT_EQ(rec.size(), row.size());

  const auto p = AsymmetricParams(row);
  const float range = p.xmax - p.xmin;
  // Symmetric can double the range; clipping methods can clip outliers but
  // never by more than the full range.
  const float tol = (method == Method::kNone) ? 1e-7f : range;
  for (std::size_t i = 0; i < row.size(); ++i) {
    EXPECT_LE(std::fabs(rec[i] - row[i]), tol) << MethodName(method) << " i=" << i;
  }
  // And the mean elementwise error must beat a degenerate all-midpoint code.
  double err = 0;
  for (std::size_t i = 0; i < row.size(); ++i) err += std::fabs(rec[i] - row[i]);
  err /= static_cast<double>(row.size());
  if (method != Method::kNone) EXPECT_LT(err, range / 2);
}

INSTANTIATE_TEST_SUITE_P(
    Methods, EncodeDecodeTest,
    ::testing::Combine(::testing::Values(Method::kNone, Method::kSymmetric,
                                         Method::kAsymmetric, Method::kAdaptiveAsymmetric,
                                         Method::kKMeans),
                       ::testing::Values(2, 3, 4, 8)));

}  // namespace
}  // namespace cnr::quant
