#include "quant/selector.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace cnr::quant {
namespace {

tensor::EmbeddingTable MakeTable(std::size_t rows, std::size_t dim, std::uint64_t seed) {
  tensor::EmbeddingTable t("emb", rows, dim);
  util::Rng rng(seed);
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<float> row(dim);
    for (auto& v : row) v = static_cast<float>(rng.NextGaussian()) * 0.05f;
    // Sprinkle outliers so adaptive quantization matters.
    if (rng.NextBool(0.3)) row[rng.NextBounded(dim)] = rng.NextFloat(-1.0f, 1.0f);
    t.RestoreRow(r, row, 0.0f);
  }
  return t;
}

TEST(SampleRows, FractionClampedToAtLeastOne) {
  util::Rng rng(1);
  const auto table = MakeTable(100, 4, 2);
  const auto rows = SampleRows(table, 1e-9, rng);
  EXPECT_EQ(rows.size(), 1u);
}

TEST(SampleRows, FullFractionCoversAll) {
  util::Rng rng(1);
  const auto table = MakeTable(50, 4, 2);
  const auto rows = SampleRows(table, 1.0, rng);
  EXPECT_EQ(rows.size(), 50u);
}

TEST(SampleRows, DistinctSorted) {
  util::Rng rng(3);
  const auto table = MakeTable(1000, 4, 4);
  const auto rows = SampleRows(table, 0.1, rng);
  EXPECT_EQ(rows.size(), 100u);
  EXPECT_TRUE(std::is_sorted(rows.begin(), rows.end()));
  for (std::size_t i = 1; i < rows.size(); ++i) EXPECT_NE(rows[i], rows[i - 1]);
}

TEST(SelectBitWidth, PaperThresholds) {
  // Fig 14: <=1 restart -> 2 bits; <=3 -> 3 bits; <20 -> 4 bits; else 8.
  EXPECT_EQ(SelectBitWidth(0), 2);
  EXPECT_EQ(SelectBitWidth(1), 2);
  EXPECT_EQ(SelectBitWidth(2), 3);
  EXPECT_EQ(SelectBitWidth(3), 3);
  EXPECT_EQ(SelectBitWidth(4), 4);
  EXPECT_EQ(SelectBitWidth(19), 4);
  EXPECT_EQ(SelectBitWidth(20), 8);
  EXPECT_EQ(SelectBitWidth(1000), 8);
}

TEST(SelectBitWidth, CustomPolicy) {
  BitWidthPolicy policy;
  policy.max_restarts_2bit = 0;
  policy.max_restarts_3bit = 10;
  policy.max_restarts_4bit = 100;
  EXPECT_EQ(SelectBitWidth(0, policy), 2);
  EXPECT_EQ(SelectBitWidth(5, policy), 3);
  EXPECT_EQ(SelectBitWidth(50, policy), 4);
  EXPECT_EQ(SelectBitWidth(101, policy), 8);
}

TEST(ConfigForRestarts, MethodMatchesBitWidth) {
  // Adaptive asymmetric at <=4 bits, plain asymmetric at 8 (paper §5.2).
  EXPECT_EQ(ConfigForRestarts(1).method, Method::kAdaptiveAsymmetric);
  EXPECT_EQ(ConfigForRestarts(1).bits, 2);
  EXPECT_EQ(ConfigForRestarts(3).method, Method::kAdaptiveAsymmetric);
  EXPECT_EQ(ConfigForRestarts(10).bits, 4);
  EXPECT_EQ(ConfigForRestarts(100).method, Method::kAsymmetric);
  EXPECT_EQ(ConfigForRestarts(100).bits, 8);
}

TEST(SelectNumBins, ProfilesAllCandidates) {
  util::Rng rng(5);
  const auto table = MakeTable(200, 16, 6);
  SelectorConfig cfg;
  cfg.sample_fraction = 0.5;
  cfg.bins_candidates = {5, 15, 30};
  const auto sel = SelectNumBins(table, 2, cfg, rng);
  ASSERT_EQ(sel.profile.size(), 3u);
  EXPECT_EQ(sel.profile[0].num_bins, 5);
  EXPECT_EQ(sel.profile[2].num_bins, 30);
  EXPECT_GT(sel.selected_bins, 0);
}

TEST(SelectNumBins, ErrorNonIncreasingInBins) {
  util::Rng rng(7);
  const auto table = MakeTable(300, 16, 8);
  SelectorConfig cfg;
  cfg.sample_fraction = 1.0;
  const auto sel = SelectNumBins(table, 2, cfg, rng);
  for (std::size_t i = 1; i < sel.profile.size(); ++i) {
    EXPECT_LE(sel.profile[i].mean_l2, sel.profile[i - 1].mean_l2 * 1.05)
        << "bins=" << sel.profile[i].num_bins;
  }
}

// The paper's key claim for parameter selection: a small uniform sample
// selects (nearly) the same num_bins as profiling the full checkpoint. With
// a 10% sample on a small table, we allow the selection to land on an
// adjacent candidate — the improvement curve is flat near its taper point.
TEST(SelectNumBins, SampledSelectionMatchesFull) {
  util::Rng rng_full(9), rng_sample(9);
  const auto table = MakeTable(2000, 16, 10);

  SelectorConfig full_cfg;
  full_cfg.sample_fraction = 1.0;
  const auto full = SelectNumBins(table, 2, full_cfg, rng_full);

  SelectorConfig sample_cfg;
  sample_cfg.sample_fraction = 0.1;  // 200 of 2000 rows
  const auto sampled = SelectNumBins(table, 2, sample_cfg, rng_sample);

  auto index_of = [&](int bins) {
    const auto& cands = full_cfg.bins_candidates;
    return std::find(cands.begin(), cands.end(), bins) - cands.begin();
  };
  EXPECT_LE(std::abs(index_of(sampled.selected_bins) - index_of(full.selected_bins)), 1)
      << "sampled=" << sampled.selected_bins << " full=" << full.selected_bins;
}

}  // namespace
}  // namespace cnr::quant
