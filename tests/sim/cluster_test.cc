#include "sim/cluster.h"

#include <gtest/gtest.h>

namespace cnr::sim {
namespace {

ClusterConfig PaperCluster() {
  // 16 nodes x 8 GPUs as in §2.2.
  return ClusterConfig{};
}

TEST(ClusterModel, GpuCount) {
  ClusterModel cluster(PaperCluster());
  EXPECT_EQ(cluster.total_gpus(), 128u);
}

TEST(ClusterModel, SnapshotStallMatchesPaperScale) {
  // A ~10 TB model across 128 GPUs at ~12 GB/s HBM->DRAM is ~6.5 s,
  // consistent with the paper's "< 7 seconds" (§4.2).
  ClusterModel cluster(PaperCluster());
  const std::uint64_t model_bytes = 10ull << 40;  // 10 TB
  const auto stall = cluster.SnapshotStall(model_bytes);
  EXPECT_GT(stall, 5 * util::kSecond);
  EXPECT_LT(stall, 8 * util::kSecond);
}

TEST(ClusterModel, StallFractionUnderHalfPercentAtThirtyMinutes) {
  // Paper §6.1: checkpointing every 30 minutes -> stall < 0.4%.
  ClusterModel cluster(PaperCluster());
  const std::uint64_t model_bytes = 10ull << 40;
  const double frac = cluster.StallFraction(model_bytes, 30 * util::kMinute);
  EXPECT_LT(frac, 0.004);
  EXPECT_GT(frac, 0.0);
}

TEST(ClusterModel, StallConstantInNodeCount) {
  // Doubling nodes while doubling model size keeps the stall flat — the
  // paper's scaling argument (§6.1): per-GPU data is bounded by HBM.
  ClusterConfig small = PaperCluster();
  ClusterConfig big = PaperCluster();
  big.nodes = 32;
  const std::uint64_t per_gpu = 80ull << 30;  // 80 GB per GPU
  ClusterModel a(small), b(big);
  EXPECT_EQ(a.SnapshotStall(per_gpu * a.total_gpus()),
            b.SnapshotStall(per_gpu * b.total_gpus()));
}

TEST(ClusterModel, CheckpointWriteTimeScalesWithBytes) {
  ClusterModel cluster(PaperCluster());
  const auto t1 = cluster.CheckpointWriteTime(1ull << 30);
  const auto t2 = cluster.CheckpointWriteTime(2ull << 30);
  EXPECT_NEAR(static_cast<double>(t2), 2.0 * static_cast<double>(t1),
              static_cast<double>(t1) * 0.01);
}

TEST(ClusterModel, InvalidConfigThrows) {
  ClusterConfig bad = PaperCluster();
  bad.nodes = 0;
  EXPECT_THROW(ClusterModel{bad}, std::invalid_argument);
  bad = PaperCluster();
  bad.hbm_to_dram_bytes_per_sec = 0;
  EXPECT_THROW(ClusterModel{bad}, std::invalid_argument);
}

TEST(ClusterModel, StallFractionRejectsBadInterval) {
  ClusterModel cluster(PaperCluster());
  EXPECT_THROW(cluster.StallFraction(1000, 0), std::invalid_argument);
}

TEST(ClusterModel, TrackingOverheadDefault) {
  ClusterModel cluster(PaperCluster());
  EXPECT_LE(cluster.tracking_overhead_fraction(), 0.01);
}

}  // namespace
}  // namespace cnr::sim
