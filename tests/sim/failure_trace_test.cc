#include "sim/failure_trace.h"

#include <gtest/gtest.h>

namespace cnr::sim {
namespace {

TEST(FailureTimeModel, DefaultFitMatchesPaperQuantiles) {
  // Fig 3 anchors: 10% of failed jobs ran >= 13.5 h, 1% ran >= 53.9 h.
  FailureTimeModel model;
  EXPECT_NEAR(model.Cdf(13.5), 0.90, 0.01);
  EXPECT_NEAR(model.Cdf(53.9), 0.99, 0.005);
}

TEST(FailureTimeModel, CdfMonotone) {
  FailureTimeModel model;
  double prev = -1;
  for (double h = 0.1; h < 100; h *= 1.5) {
    const double c = model.Cdf(h);
    EXPECT_GE(c, prev);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    prev = c;
  }
  EXPECT_EQ(model.Cdf(0.0), 0.0);
  EXPECT_EQ(model.Cdf(-5.0), 0.0);
}

TEST(FailureTimeModel, SamplesRespectTruncation) {
  FailureTimeModel model;
  util::Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_GE(model.SampleHours(rng), 5.0 / 60.0);  // sub-5-min jobs removed
  }
}

TEST(FailureTimeModel, EmpiricalQuantilesMatchAnalytic) {
  FailureTimeModel model;
  util::Rng rng(2);
  util::QuantileSketch sketch;
  for (int i = 0; i < 50000; ++i) sketch.Add(model.SampleHours(rng));
  // Truncation at 5 minutes barely moves the upper quantiles.
  EXPECT_NEAR(sketch.Quantile(0.90), 13.5, 1.5);
  EXPECT_NEAR(sketch.Quantile(0.99), 53.9, 8.0);
}

TEST(FailureTimeModel, BadSigmaThrows) {
  EXPECT_THROW(FailureTimeModel(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(FailureTimeModel(1.0, -1.0), std::invalid_argument);
}

TEST(FailureRateModel, ExpectedFailuresLinear) {
  FailureRateModel rate;
  rate.failures_per_node_hour = 0.002;
  EXPECT_DOUBLE_EQ(rate.ExpectedFailures(16, 100.0), 3.2);
  EXPECT_DOUBLE_EQ(rate.ExpectedFailures(0, 100.0), 0.0);
}

TEST(FailureRateModel, PoissonMeanMatches) {
  FailureRateModel rate;
  rate.failures_per_node_hour = 0.01;
  util::Rng rng(3);
  double total = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    total += static_cast<double>(rate.SampleFailures(rng, 16, 10.0));
  }
  EXPECT_NEAR(total / kTrials, 1.6, 0.05);
}

TEST(FailureRateModel, LargeLambdaApproximation) {
  FailureRateModel rate;
  rate.failures_per_node_hour = 1.0;
  util::Rng rng(4);
  double total = 0;
  for (int i = 0; i < 2000; ++i) {
    total += static_cast<double>(rate.SampleFailures(rng, 16, 10.0));  // lambda=160
  }
  EXPECT_NEAR(total / 2000, 160.0, 2.0);
}

TEST(SimulateRecovery, NoFailuresNoWaste) {
  util::Rng rng(5);
  const auto out = SimulateRecovery(rng, 100.0, 0.5, 0.0, 0.1);
  EXPECT_EQ(out.failures, 0u);
  EXPECT_DOUBLE_EQ(out.wasted_hours, 0.0);
  EXPECT_DOUBLE_EQ(out.total_hours, 100.0);
}

TEST(SimulateRecovery, WastePerFailureBoundedByInterval) {
  util::Rng rng(6);
  const double interval = 0.5;
  const auto out = SimulateRecovery(rng, 50.0, interval, 0.2, 0.05);
  EXPECT_GT(out.failures, 0u);
  EXPECT_LE(out.wasted_hours, static_cast<double>(out.failures) * interval);
  EXPECT_GE(out.total_hours, 50.0);
}

TEST(SimulateRecovery, ShorterIntervalWastesLess) {
  // The paper's frequency argument: a 5x longer checkpoint interval wastes
  // ~5x more work per failure on average.
  util::Rng rng1(7), rng2(7);
  const auto frequent = SimulateRecovery(rng1, 200.0, 0.25, 0.1, 0.0);
  const auto rare = SimulateRecovery(rng2, 200.0, 1.25, 0.1, 0.0);
  EXPECT_LT(frequent.wasted_hours, rare.wasted_hours);
}

TEST(SimulateRecovery, HigherRateMoreFailures) {
  util::Rng rng1(8), rng2(8);
  const auto low = SimulateRecovery(rng1, 100.0, 0.5, 0.05, 0.0);
  const auto high = SimulateRecovery(rng2, 100.0, 0.5, 0.5, 0.0);
  EXPECT_LT(low.failures, high.failures);
}

TEST(SimulateRecovery, InvalidArgsThrow) {
  util::Rng rng(9);
  EXPECT_THROW(SimulateRecovery(rng, 0.0, 0.5, 0.1, 0.0), std::invalid_argument);
  EXPECT_THROW(SimulateRecovery(rng, 10.0, 0.0, 0.1, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace cnr::sim
