// Failure-trace-driven partial recovery: replay a sim::FailureTrace of
// single- and multi-node losses against an 8-shard coordinated checkpoint
// job under a SimClock, proving the CPR-style guarantees end to end:
//   - only the lost shards' objects (their chains + the cut's COORD
//     manifest) are fetched — counted by storage::AccountingStore's
//     read-side accounting and pinned per key by a recording wrapper,
//   - no dense blob is fetched on the partial path (dense is replicated),
//   - survivors' rows are not modified,
//   - the recovered shards are bit-identical to a clean full restore.
// Run in CI both plain and with -fsanitize=thread.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/sharded_checkpoint.h"
#include "data/synthetic.h"
#include "sim/cluster.h"
#include "sim/failure_trace.h"
#include "storage/accounting_store.h"
#include "storage/object_store.h"
#include "util/sim_clock.h"

namespace cnr::sim {
namespace {

constexpr std::size_t kShards = 8;
constexpr char kJob[] = "trace";

dlrm::ModelConfig EightShardModel() {
  dlrm::ModelConfig cfg;
  cfg.num_dense = 4;
  cfg.embedding_dim = 8;
  cfg.table_rows = {256, 128};
  cfg.bottom_hidden = {16};
  cfg.top_hidden = {16};
  cfg.num_shards = kShards;
  cfg.seed = 5;
  return cfg;
}

data::DatasetConfig MatchingDataset() {
  data::DatasetConfig cfg;
  cfg.seed = 6;
  cfg.num_dense = 4;
  cfg.tables = {{256, 2, 1.1}, {128, 1, 1.05}};
  return cfg;
}

// Records every fetched key, forwarding to the backing store — the per-key
// twin of AccountingStore's per-job byte counters.
class GetRecordingStore : public storage::ObjectStore {
 public:
  explicit GetRecordingStore(std::shared_ptr<storage::ObjectStore> backing)
      : backing_(std::move(backing)) {}

  void Put(const std::string& key, std::vector<std::uint8_t> data) override {
    backing_->Put(key, std::move(data));
  }
  std::optional<std::vector<std::uint8_t>> Get(const std::string& key) override {
    {
      std::lock_guard lock(mu_);
      got_.push_back(key);
    }
    return backing_->Get(key);
  }
  bool Exists(const std::string& key) override { return backing_->Exists(key); }
  bool Delete(const std::string& key) override { return backing_->Delete(key); }
  std::vector<std::string> List(const std::string& prefix) override {
    return backing_->List(prefix);
  }
  std::uint64_t TotalBytes() override { return backing_->TotalBytes(); }
  storage::StoreStats Stats() override { return backing_->Stats(); }

  std::vector<std::string> DrainGets() {
    std::lock_guard lock(mu_);
    return std::exchange(got_, {});
  }

 private:
  std::shared_ptr<storage::ObjectStore> backing_;
  std::mutex mu_;
  std::vector<std::string> got_;
};

struct TraceFixture {
  std::shared_ptr<storage::AccountingStore> accounting;
  std::shared_ptr<GetRecordingStore> recording;
  dlrm::DlrmModel model{EightShardModel()};
  storage::Manifest cut;  // the coordinated manifest of the newest cut

  TraceFixture() {
    accounting = std::make_shared<storage::AccountingStore>(
        std::make_shared<storage::InMemoryStore>());
    recording = std::make_shared<GetRecordingStore>(accounting);
    data::SyntheticDataset ds(MatchingDataset());
    core::CheckpointService service(accounting);
    core::ShardedJobConfig cfg;
    cfg.name = kJob;
    cfg.quantize = false;
    cfg.chunk_rows = 32;
    cfg.policy = core::PolicyKind::kOneShot;
    cfg.gc = false;
    core::ShardedJobHandle handle(service, model, cfg);
    for (int b = 0; b < 4; ++b) model.TrainBatch(ds.GetBatch(b, b * 32ull, 32));
    EXPECT_TRUE(handle.WriteCut(4, 128).committed);
    for (int b = 4; b < 8; ++b) model.TrainBatch(ds.GetBatch(b, b * 32ull, 32));
    EXPECT_TRUE(handle.WriteCut(8, 256).committed);
    cut = core::LoadCutManifest(*accounting, kJob, 2);
  }

  // Keys a partial restore of `lost` is allowed to touch: the cut's COORD
  // manifest plus every object on the lost shards' sub-checkpoint chains.
  std::set<std::string> AllowedKeys(const std::vector<std::uint32_t>& lost) const {
    std::set<std::string> allowed;
    allowed.insert(storage::Manifest::CutKey(kJob, cut.cut_epoch));
    const auto survey = core::SurveyJob(*accounting, kJob, /*measure_orphans=*/false);
    for (const auto shard : lost) {
      const auto e = std::find_if(cut.shard_map.begin(), cut.shard_map.end(),
                                  [shard](const auto& s) { return s.shard_id == shard; });
      if (e == cut.shard_map.end()) {
        ADD_FAILURE() << "shard " << shard << " not in the cut's shard map";
        continue;
      }
      // The shard's chain: its sub-checkpoint and every ancestor.
      std::uint64_t id = e->checkpoint_id;
      for (;;) {
        const auto prefix = storage::Manifest::CheckpointPrefix(kJob, id);
        for (const auto& [key, bytes] : survey.objects) {
          if (key.starts_with(prefix)) allowed.insert(key);
        }
        const auto p = survey.parent_of.find(id);
        if (p == survey.parent_of.end()) break;
        id = p->second;
      }
    }
    return allowed;
  }
};

// Replays one loss event: partial-restore the lost shards into `target` and
// check fetch discipline plus byte accounting.
void ReplayEvent(TraceFixture& fix, const ClusterModel& cluster,
                 const NodeFailureEvent& ev, dlrm::DlrmModel& target) {
  const auto lost_sz = cluster.LostShards(ev.nodes, kShards);
  std::vector<std::uint32_t> lost(lost_sz.begin(), lost_sz.end());
  ASSERT_FALSE(lost.empty());
  ASSERT_LT(lost.size(), kShards);  // a partial loss, or the test proves nothing

  const storage::JobUsage before = fix.accounting->Usage(kJob);
  (void)fix.recording->DrainGets();
  const auto result =
      core::RestorePartial(*fix.recording, kJob, target, lost, std::nullopt);
  const storage::JobUsage after = fix.accounting->Usage(kJob);

  EXPECT_EQ(result.cut_epoch, fix.cut.cut_epoch);
  EXPECT_EQ(result.shards_restored.size(), lost.size());

  // Fetch discipline: every key read belongs to a lost shard's chain or is
  // the COORD manifest — in particular no dense blob and nothing of any
  // surviving shard.
  const auto allowed = fix.AllowedKeys(lost);
  std::uint64_t fetched_bytes = 0;
  for (const auto& key : fix.recording->DrainGets()) {
    EXPECT_TRUE(allowed.contains(key)) << "fetched outside lost shards: " << key;
    EXPECT_EQ(key.find("dense"), std::string::npos) << key;
    const auto blob = fix.accounting->Get(key);
    if (blob) fetched_bytes += blob->size();
  }

  // AccountingStore's read-side counters saw exactly the restore's fetches
  // (`after` was captured before the verification re-reads above).
  EXPECT_GT(after.gets, before.gets);
  EXPECT_EQ(after.bytes_fetched - before.bytes_fetched, fetched_bytes);
  EXPECT_GE(after.bytes_fetched - before.bytes_fetched, result.bytes_read);
  EXPECT_GT(result.bytes_read, 0u);
}

TEST(PartialRecoveryTrace, ReplaysNodeLossesAndRecoversBitIdentical) {
  TraceFixture fix;
  ClusterConfig cluster_cfg;
  cluster_cfg.nodes = 4;  // shards 0..7 round-robin: node n hosts {n, n+4}
  const ClusterModel cluster(cluster_cfg);

  // A clean full restore is the reference state.
  dlrm::DlrmModel reference(EightShardModel());
  (void)core::RestoreShardedModel(*fix.accounting, kJob, reference);
  EXPECT_TRUE(reference.StateEquals(fix.model));  // quant off: exact

  // One single-node loss, then a correlated two-node loss, on a SimClock.
  FailureTrace trace;
  trace.events.push_back({1 * util::kHour, {2}});
  trace.events.push_back({5 * util::kHour, {0, 3}});

  util::SimClock clock;
  const dlrm::DlrmModel fresh(EightShardModel());
  for (const auto& ev : trace.events) {
    ASSERT_GE(ev.at, clock.now());
    clock.AdvanceTo(ev.at);

    dlrm::DlrmModel target(EightShardModel());  // fresh = surviving state
    ReplayEvent(fix, cluster, ev, target);

    const auto lost = cluster.LostShards(ev.nodes, kShards);
    const std::set<std::size_t> lost_set(lost.begin(), lost.end());
    for (std::size_t t = 0; t < target.num_tables(); ++t) {
      for (std::size_t s = 0; s < target.table(t).num_shards(); ++s) {
        if (lost_set.contains(s)) {
          EXPECT_EQ(target.table(t).Shard(s), reference.table(t).Shard(s))
              << "lost shard differs from full restore: table " << t << " shard " << s;
        } else {
          EXPECT_EQ(target.table(t).Shard(s), fresh.table(t).Shard(s))
              << "surviving shard modified: table " << t << " shard " << s;
        }
      }
    }
    // Dense was not restored (replicated across trainers, never fetched).
    EXPECT_TRUE(target.DenseEquals(fresh));
  }
  EXPECT_EQ(clock.now(), 5 * util::kHour);
}

// The generator produces a replayable trace: ordered events within the
// horizon, each naming one valid node — and mapping each event through the
// cluster model yields shard sets a partial restore accepts.
TEST(PartialRecoveryTrace, GeneratedTraceMapsToRestorableShardSets) {
  TraceFixture fix;
  ClusterConfig cluster_cfg;
  cluster_cfg.nodes = 4;
  const ClusterModel cluster(cluster_cfg);

  util::Rng rng(123);
  FailureRateModel rate;
  rate.failures_per_node_hour = 0.05;  // dense enough to get events
  const FailureTrace trace = GenerateNodeFailureTrace(rng, cluster_cfg, rate, 2000.0);
  ASSERT_FALSE(trace.events.empty());

  util::SimTime prev = 0;
  for (const auto& ev : trace.events) {
    EXPECT_GE(ev.at, prev);
    EXPECT_LE(ev.at, static_cast<util::SimTime>(2000.0 * util::kHour) + util::kHour);
    ASSERT_EQ(ev.nodes.size(), 1u);
    EXPECT_LT(ev.nodes[0], cluster_cfg.nodes);
    prev = ev.at;
  }

  // Replay the first event end to end.
  dlrm::DlrmModel target(EightShardModel());
  ReplayEvent(fix, cluster, trace.events.front(), target);
}

}  // namespace
}  // namespace cnr::sim
