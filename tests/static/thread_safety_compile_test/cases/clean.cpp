// Control case: correctly annotated locking. Must compile on every
// compiler, with and without -Wthread-safety — if this fails under the
// analysis, the harness (not the production code) is broken.
#include "util/sync.h"

namespace {

class Counter {
 public:
  void Increment() EXCLUDES(mu_) {
    cnr::util::MutexLock lock(mu_);
    IncrementLocked();
  }

  int Read() const EXCLUDES(mu_) {
    cnr::util::MutexLock lock(mu_);
    return value_;
  }

 private:
  void IncrementLocked() REQUIRES(mu_) { ++value_; }

  mutable cnr::util::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Increment();
  return c.Read() == 1 ? 0 : 1;
}
