// Seeded violation: acquiring two mutexes against their declared
// ACQUIRED_BEFORE order — the deadlock pattern the executor/SimClock/
// maintenance hierarchy annotations exist to prevent. Must be rejected by
// -Wthread-safety-beta (-Werror); must compile without the analysis.
#include "util/sync.h"

namespace {

class Planes {
 public:
  void InOrder() EXCLUDES(first_, second_) {
    cnr::util::MutexLock a(first_);
    cnr::util::MutexLock b(second_);
    ++ops_;
  }

  // BAD: second_ taken while acquiring first_, inverting ACQUIRED_BEFORE.
  void Inverted() EXCLUDES(first_, second_) {
    cnr::util::MutexLock b(second_);
    cnr::util::MutexLock a(first_);
    ++ops_;
  }

 private:
  cnr::util::Mutex first_ ACQUIRED_BEFORE(second_);
  cnr::util::Mutex second_;
  int ops_ GUARDED_BY(second_) = 0;
};

}  // namespace

int main() {
  Planes p;
  p.InOrder();
  p.Inverted();
  return 0;
}
