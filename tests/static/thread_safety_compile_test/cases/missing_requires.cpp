// Seeded violation: calling a REQUIRES(mu_) helper without holding the
// mutex. Must be rejected by -Wthread-safety (-Werror); must compile
// without it.
#include "util/sync.h"

namespace {

class Queue {
 public:
  // BAD: PushLocked requires mu_, called here with no lock held.
  void Push() { PushLocked(); }

  int Size() const EXCLUDES(mu_) {
    cnr::util::MutexLock lock(mu_);
    return size_;
  }

 private:
  void PushLocked() REQUIRES(mu_) { ++size_; }

  mutable cnr::util::Mutex mu_;
  int size_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Queue q;
  q.Push();
  return q.Size() == 1 ? 0 : 1;
}
