// Seeded violation: reading a GUARDED_BY member without holding its mutex.
// Must be rejected by -Wthread-safety (-Werror); must compile without it.
#include "util/sync.h"

namespace {

class Counter {
 public:
  void Increment() EXCLUDES(mu_) {
    cnr::util::MutexLock lock(mu_);
    ++value_;
  }

  // BAD: value_ is guarded by mu_, read here with no lock held.
  int Read() const { return value_; }

 private:
  mutable cnr::util::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Increment();
  return c.Read() == 1 ? 0 : 1;
}
