#include "storage/accounting_store.h"

#include <gtest/gtest.h>

#include <memory>

namespace cnr::storage {
namespace {

std::vector<std::uint8_t> Bytes(std::size_t n) { return std::vector<std::uint8_t>(n, 7); }

TEST(AccountingStore, JobOfKeyFollowsManifestConvention) {
  EXPECT_EQ(AccountingStore::JobOfKey("jobs/alpha/ckpt/000000000001/MANIFEST"), "alpha");
  EXPECT_EQ(AccountingStore::JobOfKey("jobs/a/dense"), "a");
  EXPECT_EQ(AccountingStore::JobOfKey("jobs/noslash"), "");
  EXPECT_EQ(AccountingStore::JobOfKey("other/alpha/x"), "");
  EXPECT_EQ(AccountingStore::JobOfKey(""), "");
}

TEST(AccountingStore, TracksPerJobBytesAcrossPutReplaceDelete) {
  AccountingStore store(std::make_shared<InMemoryStore>());
  store.Put("jobs/a/ckpt/1/c0", Bytes(100));
  store.Put("jobs/a/ckpt/1/c1", Bytes(50));
  store.Put("jobs/b/ckpt/1/c0", Bytes(30));
  store.Put("misc", Bytes(5));

  EXPECT_EQ(store.Usage("a").bytes, 150u);
  EXPECT_EQ(store.Usage("a").objects, 2u);
  EXPECT_EQ(store.Usage("b").bytes, 30u);
  EXPECT_EQ(store.Usage("").bytes, 5u);
  EXPECT_EQ(store.TrackedBytes(), 185u);
  EXPECT_EQ(store.TrackedBytes(), store.TotalBytes());

  // Replacement adjusts, it does not double-count.
  store.Put("jobs/a/ckpt/1/c0", Bytes(10));
  EXPECT_EQ(store.Usage("a").bytes, 60u);
  EXPECT_EQ(store.Usage("a").objects, 2u);
  EXPECT_EQ(store.Usage("a").puts, 3u);

  // Deletes return the bytes to the pool.
  EXPECT_TRUE(store.Delete("jobs/a/ckpt/1/c1"));
  EXPECT_EQ(store.Usage("a").bytes, 10u);
  EXPECT_EQ(store.Usage("a").objects, 1u);
  EXPECT_EQ(store.Usage("a").deletes, 1u);
  EXPECT_FALSE(store.Delete("jobs/a/ckpt/1/c1"));
  EXPECT_EQ(store.Usage("a").deletes, 1u);

  const auto usage = store.UsageByJob();
  EXPECT_EQ(usage.size(), 3u);  // a, b, and the "" bucket
  EXPECT_EQ(store.TrackedBytes(), 45u);
}

TEST(AccountingStore, SharedQuotaRejectsBeforeTouchingTheBackingStore) {
  auto inner = std::make_shared<InMemoryStore>();
  AccountingStore store(inner, /*quota_bytes=*/100);
  store.Put("jobs/a/x", Bytes(60));
  store.Put("jobs/b/x", Bytes(40));  // exactly at quota: allowed

  EXPECT_THROW(store.Put("jobs/c/x", Bytes(1)), QuotaExceeded);
  EXPECT_FALSE(inner->Exists("jobs/c/x")) << "a rejected put must not reach the backing";
  EXPECT_EQ(store.TrackedBytes(), 100u);

  // Replacing an object only charges the delta.
  EXPECT_NO_THROW(store.Put("jobs/a/x", Bytes(60)));
  EXPECT_THROW(store.Put("jobs/a/x", Bytes(61)), QuotaExceeded);

  // Freeing space (GC) makes the put admissible again.
  EXPECT_TRUE(store.Delete("jobs/b/x"));
  EXPECT_NO_THROW(store.Put("jobs/c/x", Bytes(40)));
  EXPECT_EQ(store.TrackedBytes(), 100u);
}

TEST(AccountingStore, ReadsAndMetadataPassThrough) {
  auto inner = std::make_shared<InMemoryStore>();
  inner->Put("preexisting", Bytes(11));  // written around the view
  AccountingStore store(inner);
  store.Put("jobs/a/x", Bytes(3));

  EXPECT_TRUE(store.Exists("preexisting"));
  EXPECT_EQ(store.Get("jobs/a/x")->size(), 3u);
  EXPECT_EQ(store.List("").size(), 2u);
  EXPECT_EQ(store.TotalBytes(), 14u);   // backing truth
  EXPECT_EQ(store.TrackedBytes(), 3u);  // only what went through the view
  EXPECT_EQ(store.Stats().puts, 2u);
}

TEST(AccountingStore, SeedObjectAttributesPreexistingObjectsIdempotently) {
  auto inner = std::make_shared<InMemoryStore>();
  inner->Put("jobs/a/ckpt/1/c0", Bytes(100));  // written around the view
  AccountingStore store(inner);

  EXPECT_TRUE(store.SeedObject("jobs/a/ckpt/1/c0", 100));
  EXPECT_EQ(store.Usage("a").bytes, 100u);
  EXPECT_EQ(store.Usage("a").objects, 1u);
  EXPECT_EQ(store.Usage("a").seeded, 1u);
  EXPECT_EQ(store.Usage("a").puts, 0u) << "seeding is not a put";
  EXPECT_EQ(store.TrackedBytes(), 100u);

  // Reconciling twice cannot double-count.
  EXPECT_FALSE(store.SeedObject("jobs/a/ckpt/1/c0", 100));
  EXPECT_EQ(store.TrackedBytes(), 100u);

  // A key written through the view is already tracked: seeding skips it.
  store.Put("jobs/b/x", Bytes(7));
  EXPECT_FALSE(store.SeedObject("jobs/b/x", 7));
  EXPECT_EQ(store.Usage("b").seeded, 0u);

  // Deleting a seeded object returns its bytes like any other.
  EXPECT_TRUE(store.Delete("jobs/a/ckpt/1/c0"));
  EXPECT_EQ(store.Usage("a").bytes, 0u);
  EXPECT_EQ(store.TrackedBytes(), 7u);
}

TEST(AccountingStore, SeedingIsNotQuotaChecked) {
  auto inner = std::make_shared<InMemoryStore>();
  AccountingStore store(inner, /*quota_bytes=*/100);
  // Reality already exists: seeding may exceed the quota without throwing...
  EXPECT_TRUE(store.SeedObject("jobs/a/old", 150));
  EXPECT_EQ(store.TrackedBytes(), 150u);
  // ...and new writes are then rejected until space is freed.
  EXPECT_THROW(store.Put("jobs/b/x", Bytes(1)), QuotaExceeded);
  // The seed described an object the backing store never had (out-of-band
  // delete): Delete reports it absent and frees nothing.
  EXPECT_FALSE(store.Delete("jobs/a/old"));
  EXPECT_EQ(store.TrackedBytes(), 150u);
}

TEST(AccountingStore, NullBackingThrows) {
  EXPECT_THROW(AccountingStore(nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace cnr::storage
