#include "storage/codec.h"

#include <gtest/gtest.h>

#include <cstring>

#include "util/rng.h"

namespace cnr::storage {
namespace {

std::vector<std::uint8_t> RandomBytes(util::Rng& rng, std::size_t n) {
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.NextBounded(256));
  return out;
}

// fp32 embedding-like payload: small values around zero share exponent bytes.
std::vector<std::uint8_t> EmbeddingBytes(util::Rng& rng, std::size_t floats) {
  std::vector<float> values(floats);
  for (auto& v : values) v = 0.02f * static_cast<float>(rng.NextGaussian());
  std::vector<std::uint8_t> out(floats * sizeof(float));
  std::memcpy(out.data(), values.data(), out.size());
  return out;
}

TEST(BytePlaneCodec, RoundTripRandom) {
  util::Rng rng(1);
  BytePlaneCodec codec;
  for (const std::size_t n : {0u, 1u, 2u, 3u, 4u, 5u, 100u, 4096u}) {
    const auto data = RandomBytes(rng, n);
    EXPECT_EQ(codec.Decompress(codec.Compress(data)), data) << "n=" << n;
  }
}

TEST(BytePlaneCodec, RoundTripEmbeddingData) {
  util::Rng rng(2);
  BytePlaneCodec codec;
  const auto data = EmbeddingBytes(rng, 10000);
  EXPECT_EQ(codec.Decompress(codec.Compress(data)), data);
}

TEST(BytePlaneCodec, CompressesZeros) {
  BytePlaneCodec codec;
  const std::vector<std::uint8_t> zeros(10000, 0);
  const auto compressed = codec.Compress(zeros);
  EXPECT_LT(compressed.size(), zeros.size() / 10);
  EXPECT_EQ(codec.Decompress(compressed), zeros);
}

TEST(BytePlaneCodec, RepeatedPatternCompresses) {
  BytePlaneCodec codec;
  std::vector<std::uint8_t> data;
  for (int i = 0; i < 2500; ++i) {
    data.push_back(0x3C);
    data.push_back(0x00);
    data.push_back(0xA0);
    data.push_back(0x41);
  }
  const auto compressed = codec.Compress(data);
  EXPECT_LT(compressed.size(), data.size() / 2);
  EXPECT_EQ(codec.Decompress(compressed), data);
}

// The paper's observation: generic compression yields only single-digit
// percent reduction on trained fp32 embedding data (Zstandard managed <=7%).
TEST(BytePlaneCodec, EmbeddingDataBarelyCompresses) {
  util::Rng rng(3);
  BytePlaneCodec codec;
  const auto data = EmbeddingBytes(rng, 50000);
  const auto compressed = codec.Compress(data);
  const double ratio = static_cast<double>(compressed.size()) / data.size();
  // Some reduction (sign/exponent structure) but nowhere near quantization's.
  EXPECT_LT(ratio, 1.05);
  EXPECT_GT(ratio, 0.6);
}

TEST(BytePlaneCodec, TruncatedInputThrows) {
  BytePlaneCodec codec;
  const std::vector<std::uint8_t> garbage = {1, 2, 3};
  EXPECT_THROW(codec.Decompress(garbage), std::invalid_argument);
}

TEST(BytePlaneCodec, CorruptZeroRunThrows) {
  BytePlaneCodec codec;
  const std::vector<std::uint8_t> payload = {42, 0, 0};
  auto compressed = codec.Compress(payload);
  compressed.pop_back();  // cut the run length byte
  EXPECT_THROW(codec.Decompress(compressed), std::invalid_argument);
}

TEST(IdentityCodec, PassThrough) {
  util::Rng rng(4);
  IdentityCodec codec;
  const auto data = RandomBytes(rng, 100);
  EXPECT_EQ(codec.Compress(data), data);
  EXPECT_EQ(codec.Decompress(data), data);
  EXPECT_STREQ(codec.Name(), "identity");
}

TEST(HuffmanPlaneCodec, RoundTripRandom) {
  util::Rng rng(11);
  HuffmanPlaneCodec codec;
  for (const std::size_t n : {0u, 1u, 2u, 3u, 4u, 5u, 255u, 256u, 4096u}) {
    const auto data = RandomBytes(rng, n);
    EXPECT_EQ(codec.Decompress(codec.Compress(data)), data) << "n=" << n;
  }
}

TEST(HuffmanPlaneCodec, RoundTripEmbeddingData) {
  util::Rng rng(12);
  HuffmanPlaneCodec codec;
  const auto data = EmbeddingBytes(rng, 20000);
  EXPECT_EQ(codec.Decompress(codec.Compress(data)), data);
}

TEST(HuffmanPlaneCodec, CompressesSkewedData) {
  // A plane dominated by one byte value compresses strongly.
  HuffmanPlaneCodec codec;
  std::vector<std::uint8_t> data(40000, 0x41);
  for (std::size_t i = 0; i < data.size(); i += 97) data[i] = 0x42;
  const auto compressed = codec.Compress(data);
  EXPECT_LT(compressed.size(), data.size() / 4);
  EXPECT_EQ(codec.Decompress(compressed), data);
}

TEST(HuffmanPlaneCodec, EmbeddingGainIsSingleDigitPercent) {
  // The Zstandard-baseline property the paper reports: entropy coding of
  // fp32 embeddings gains only a few percent (exponent/sign structure).
  util::Rng rng(13);
  HuffmanPlaneCodec codec;
  const auto data = EmbeddingBytes(rng, 50000);
  const auto compressed = codec.Compress(data);
  const double ratio = static_cast<double>(compressed.size()) / data.size();
  EXPECT_LT(ratio, 1.01);   // never meaningfully expands (raw fallback)
  EXPECT_GT(ratio, 0.70);   // and never approaches quantization's 4-13x
}

TEST(HuffmanPlaneCodec, RawFallbackOnIncompressible) {
  util::Rng rng(14);
  HuffmanPlaneCodec codec;
  const auto data = RandomBytes(rng, 8192);
  const auto compressed = codec.Compress(data);
  // 8-byte header + 4 mode bytes of overhead at most (plus table if chosen).
  EXPECT_LE(compressed.size(), data.size() + 8 + 4 + 4 * 256);
  EXPECT_EQ(codec.Decompress(compressed), data);
}

TEST(HuffmanPlaneCodec, TruncatedThrows) {
  HuffmanPlaneCodec codec;
  std::vector<std::uint8_t> garbage = {1, 2, 3};
  EXPECT_THROW(codec.Decompress(garbage), std::invalid_argument);
  util::Rng rng(15);
  auto compressed = codec.Compress(RandomBytes(rng, 100));
  compressed.resize(compressed.size() / 2);
  EXPECT_THROW(codec.Decompress(compressed), std::invalid_argument);
}

TEST(HuffmanPlaneCodec, SingleSymbolPlane) {
  HuffmanPlaneCodec codec;
  const std::vector<std::uint8_t> data(1000, 0x7F);
  const auto compressed = codec.Compress(data);
  EXPECT_LT(compressed.size(), 1200u);  // four 256-byte tables dominate
  EXPECT_EQ(codec.Decompress(compressed), data);
}

class CodecRoundTripTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CodecRoundTripTest, ArbitrarySizes) {
  util::Rng rng(GetParam() * 7 + 1);
  BytePlaneCodec codec;
  const auto data = RandomBytes(rng, GetParam());
  EXPECT_EQ(codec.Decompress(codec.Compress(data)), data);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CodecRoundTripTest,
                         ::testing::Values(0, 1, 3, 4, 7, 8, 255, 256, 257, 1023, 65536));

}  // namespace
}  // namespace cnr::storage
