#include "storage/fault_injection.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "core/checknrun.h"
#include "data/synthetic.h"
#include "storage/retrying_store.h"

namespace cnr::storage {
namespace {

std::vector<std::uint8_t> Bytes(const std::string& s) { return {s.begin(), s.end()}; }

TEST(FaultInjectionStore, NoFaultsIsTransparent) {
  auto store = FaultInjectionStore(std::make_shared<InMemoryStore>(), FaultConfig{});
  store.Put("k", Bytes("v"));
  EXPECT_EQ(*store.Get("k"), Bytes("v"));
  EXPECT_EQ(store.injected_put_failures(), 0u);
  EXPECT_EQ(store.injected_corruptions(), 0u);
}

TEST(FaultInjectionStore, PutFailuresThrow) {
  FaultConfig cfg;
  cfg.put_failure_probability = 1.0;
  FaultInjectionStore store(std::make_shared<InMemoryStore>(), cfg);
  EXPECT_THROW(store.Put("k", Bytes("v")), StoreUnavailable);
  EXPECT_EQ(store.injected_put_failures(), 1u);
  EXPECT_FALSE(store.Exists("k"));
}

TEST(FaultInjectionStore, GetFailuresThrow) {
  FaultConfig cfg;
  cfg.get_failure_probability = 1.0;
  FaultInjectionStore store(std::make_shared<InMemoryStore>(), cfg);
  store.Put("k", Bytes("v"));
  EXPECT_THROW(store.Get("k"), StoreUnavailable);
  EXPECT_EQ(store.injected_get_failures(), 1u);
  // Healing the store makes the object readable again — the failure was
  // transient, not data loss.
  store.SetConfig(FaultConfig{});
  EXPECT_EQ(*store.Get("k"), Bytes("v"));
}

TEST(FaultInjectionStore, RetryingStoreAbsorbsTransientGetFailures) {
  FaultConfig cfg;
  cfg.get_failure_probability = 0.5;
  cfg.seed = 3;
  auto flaky = std::make_shared<FaultInjectionStore>(std::make_shared<InMemoryStore>(), cfg);
  flaky->Put("k", Bytes("v"));

  RetryPolicy policy;
  policy.max_attempts = 64;  // P(all fail) = 0.5^64: effectively never
  RetryingStore retrying(flaky, policy);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(*retrying.Get("k"), Bytes("v"));
  EXPECT_GT(flaky->injected_get_failures(), 0u) << "fault injection never fired";
}

TEST(FaultInjectionStore, ReadCorruptionFlipsOneBit) {
  FaultConfig cfg;
  cfg.read_corruption_probability = 1.0;
  FaultInjectionStore store(std::make_shared<InMemoryStore>(), cfg);
  store.Put("k", Bytes("abcdefgh"));
  const auto got = *store.Get("k");
  EXPECT_EQ(got.size(), 8u);
  int differing_bits = 0;
  const std::string original = "abcdefgh";
  for (std::size_t i = 0; i < 8; ++i) {
    differing_bits += __builtin_popcount(static_cast<unsigned>(
        got[i] ^ static_cast<std::uint8_t>(original[i])));
  }
  EXPECT_EQ(differing_bits, 1);
  EXPECT_EQ(store.injected_corruptions(), 1u);
}

TEST(FaultInjectionStore, CounterReadsAreSafeUnderConcurrentInjection) {
  // Regression pin for the thread-safety annotation pass: the injected_*
  // accessors used to read the counters without mu_, racing the store
  // operations that bump them. They now lock (and are annotated
  // EXCLUDES(mu_)); under TSan this test flags any relapse.
  FaultConfig cfg;
  cfg.put_failure_probability = 1.0;
  cfg.get_failure_probability = 1.0;
  FaultInjectionStore store(std::make_shared<InMemoryStore>(), cfg);

  constexpr std::uint64_t kThreads = 4;
  constexpr std::uint64_t kOpsPerThread = 200;
  std::atomic<bool> go{false};
  std::vector<util::Thread> workers;
  for (std::uint64_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&store, &go] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (std::uint64_t i = 0; i < kOpsPerThread; ++i) {
        EXPECT_THROW(store.Put("k", {1}), StoreUnavailable);
        EXPECT_THROW(store.Get("k"), StoreUnavailable);
      }
    });
  }
  go.store(true, std::memory_order_release);
  // Poll the counters while workers are still injecting — the read that
  // used to be unlocked. Counts must be monotone.
  std::uint64_t last = 0;
  while (last < kThreads * kOpsPerThread) {
    const std::uint64_t now = store.injected_put_failures();
    EXPECT_GE(now, last);
    last = now;
  }
  for (auto& w : workers) w.Join();
  EXPECT_EQ(store.injected_put_failures(), kThreads * kOpsPerThread);
  EXPECT_EQ(store.injected_get_failures(), kThreads * kOpsPerThread);
}

TEST(FaultInjectionStore, NullBackingThrows) {
  EXPECT_THROW(FaultInjectionStore(nullptr, FaultConfig{}), std::invalid_argument);
}

// --- system-level guarantees under faults ---

dlrm::ModelConfig SmallModel() {
  dlrm::ModelConfig cfg;
  cfg.num_dense = 4;
  cfg.embedding_dim = 8;
  cfg.table_rows = {128, 64};
  cfg.bottom_hidden = {16};
  cfg.top_hidden = {16};
  cfg.num_shards = 2;
  return cfg;
}

data::DatasetConfig MatchingDataset() {
  data::DatasetConfig cfg;
  cfg.num_dense = 4;
  cfg.tables = {{128, 2, 1.1}, {64, 1, 1.05}};
  return cfg;
}

TEST(FaultTolerance, TransientPutFailuresAreRetried) {
  // ~20% of puts fail transiently; with 3 attempts every object lands and
  // the checkpoint completes.
  FaultConfig fc;
  fc.put_failure_probability = 0.2;
  fc.seed = 7;
  auto store = std::make_shared<FaultInjectionStore>(std::make_shared<InMemoryStore>(), fc);

  dlrm::DlrmModel model(SmallModel());
  data::SyntheticDataset ds(MatchingDataset());
  data::ReaderConfig rcfg;
  rcfg.batch_size = 16;
  rcfg.num_workers = 2;
  data::ReaderMaster reader(ds, rcfg);

  core::CheckNRunConfig ccfg;
  ccfg.job = "flaky";
  ccfg.interval_batches = 4;
  ccfg.quantize = false;
  ccfg.chunk_rows = 16;
  // P(one put exhausts all attempts) = 0.2^10 ~ 1e-7: effectively never.
  ccfg.put_attempts = 10;
  core::CheckNRun cnr(model, reader, store, ccfg);
  cnr.Run(4);

  EXPECT_GT(store->injected_put_failures(), 0u) << "fault injection never fired";
  dlrm::DlrmModel restored(SmallModel());
  const auto rr = core::RestoreModel(*store, "flaky", restored);
  EXPECT_EQ(rr.batches_trained, 16u);
  EXPECT_TRUE(restored.DenseEquals(model));
}

TEST(FaultTolerance, FailedCheckpointIsNeverDeclaredValid) {
  // A permanently unavailable store mid-run: the failed checkpoint's
  // manifest must not exist, and the previous checkpoint stays restorable.
  auto inner = std::make_shared<InMemoryStore>();
  auto store = std::make_shared<FaultInjectionStore>(inner, FaultConfig{});

  dlrm::DlrmModel model(SmallModel());
  data::SyntheticDataset ds(MatchingDataset());
  data::ReaderConfig rcfg;
  rcfg.batch_size = 16;
  rcfg.num_workers = 2;
  data::ReaderMaster reader(ds, rcfg);

  core::CheckNRunConfig ccfg;
  ccfg.job = "dying";
  ccfg.interval_batches = 4;
  ccfg.quantize = false;
  ccfg.chunk_rows = 16;
  core::CheckNRun cnr(model, reader, store, ccfg);
  cnr.Run(2);  // two good checkpoints

  dlrm::DlrmModel after_two(SmallModel());
  core::RestoreModel(*store, "dying", after_two);  // snapshot of good state

  // Storage tier goes down hard: every put fails, retries exhausted.
  FaultConfig dead;
  dead.put_failure_probability = 1.0;
  store->SetConfig(dead);
  cnr.Step();
  EXPECT_THROW(cnr.Drain(), StoreUnavailable);

  // Validity invariant: checkpoint 3's manifest never appeared.
  EXPECT_EQ(*core::LatestCheckpointId(*inner, "dying"), 2u);
  store->SetConfig(FaultConfig{});  // heal for reads
  dlrm::DlrmModel restored(SmallModel());
  const auto rr = core::RestoreModel(*store, "dying", restored);
  EXPECT_EQ(rr.checkpoint_id, 2u);
  EXPECT_EQ(rr.batches_trained, 8u);
}

TEST(FaultTolerance, BitRotRejectedAtRestore) {
  FaultConfig fc;  // clean during write
  auto store = std::make_shared<FaultInjectionStore>(std::make_shared<InMemoryStore>(), fc);

  dlrm::DlrmModel model(SmallModel());
  data::SyntheticDataset ds(MatchingDataset());
  data::ReaderConfig rcfg;
  rcfg.batch_size = 16;
  rcfg.num_workers = 2;
  data::ReaderMaster reader(ds, rcfg);
  core::CheckNRunConfig ccfg;
  ccfg.job = "rot";
  ccfg.interval_batches = 4;
  ccfg.quantize = false;
  core::CheckNRun cnr(model, reader, store, ccfg);
  cnr.Run(1);

  // All reads now corrupt one bit; chunk CRCs must catch it.
  FaultConfig rotten;
  rotten.read_corruption_probability = 1.0;
  store->SetConfig(rotten);
  dlrm::DlrmModel restored(SmallModel());
  EXPECT_THROW(core::RestoreModel(*store, "rot", restored), std::exception);
}

}  // namespace
}  // namespace cnr::storage
