#include "storage/file_store.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/checknrun.h"
#include "data/synthetic.h"

namespace cnr::storage {
namespace {

namespace fs = std::filesystem;

class FileStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("cnr_filestore_test_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(root_);
  }
  void TearDown() override { fs::remove_all(root_); }
  fs::path root_;
};

std::vector<std::uint8_t> Bytes(const std::string& s) { return {s.begin(), s.end()}; }

TEST_F(FileStoreTest, PutGetRoundTrip) {
  FileStore store(root_);
  store.Put("jobs/a/ckpt/000000000001/MANIFEST", Bytes("hello"));
  const auto got = store.Get("jobs/a/ckpt/000000000001/MANIFEST");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, Bytes("hello"));
}

TEST_F(FileStoreTest, GetMissing) {
  FileStore store(root_);
  EXPECT_FALSE(store.Get("nope").has_value());
  EXPECT_FALSE(store.Exists("nope"));
}

TEST_F(FileStoreTest, OverwriteAndDelete) {
  FileStore store(root_);
  store.Put("k", Bytes("one"));
  store.Put("k", Bytes("two"));
  EXPECT_EQ(*store.Get("k"), Bytes("two"));
  EXPECT_TRUE(store.Delete("k"));
  EXPECT_FALSE(store.Delete("k"));
  EXPECT_FALSE(store.Exists("k"));
}

TEST_F(FileStoreTest, ListByPrefixSorted) {
  FileStore store(root_);
  store.Put("jobs/a/2", Bytes("x"));
  store.Put("jobs/a/1", Bytes("x"));
  store.Put("jobs/b/1", Bytes("x"));
  const auto keys = store.List("jobs/a/");
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "jobs/a/1");
  EXPECT_EQ(keys[1], "jobs/a/2");
  EXPECT_EQ(store.List("").size(), 3u);
}

TEST_F(FileStoreTest, TotalBytes) {
  FileStore store(root_);
  store.Put("a", Bytes("1234"));
  store.Put("b/c", Bytes("56"));
  EXPECT_EQ(store.TotalBytes(), 6u);
}

TEST_F(FileStoreTest, RejectsTraversalKeys) {
  FileStore store(root_);
  EXPECT_THROW(store.Put("../evil", Bytes("x")), std::invalid_argument);
  EXPECT_THROW(store.Put("/abs", Bytes("x")), std::invalid_argument);
  EXPECT_THROW(store.Put("", Bytes("x")), std::invalid_argument);
  EXPECT_THROW(store.Get("a/../b"), std::invalid_argument);
}

// ".tmp" is the rename protocol's reserved suffix: a key using it would be
// writable yet invisible to List/TotalBytes (and so to surveys and recovery
// scans) — reject it everywhere instead of creating a phantom object.
TEST_F(FileStoreTest, RejectsTmpSuffixedKeys) {
  FileStore store(root_);
  EXPECT_THROW(store.Put("x.tmp", Bytes("x")), std::invalid_argument);
  EXPECT_THROW(store.Put("dir/y.tmp", Bytes("x")), std::invalid_argument);
  EXPECT_THROW(store.Get("x.tmp"), std::invalid_argument);
  EXPECT_THROW(store.Exists("x.tmp"), std::invalid_argument);
  EXPECT_THROW(store.Delete("x.tmp"), std::invalid_argument);
  EXPECT_THROW(store.SizeOf("x.tmp"), std::invalid_argument);
  // Only the exact suffix is reserved.
  store.Put("x.tmp.ok", Bytes("x"));
  store.Put("tmp", Bytes("x"));
  EXPECT_EQ(store.List("").size(), 2u);
}

TEST_F(FileStoreTest, PersistsAcrossInstances) {
  {
    FileStore store(root_);
    store.Put("durable", Bytes("still here"));
  }
  FileStore reopened(root_);
  const auto got = reopened.Get("durable");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, Bytes("still here"));
}

TEST_F(FileStoreTest, EmptyObjectAllowed) {
  FileStore store(root_);
  store.Put("empty", {});
  ASSERT_TRUE(store.Get("empty").has_value());
  EXPECT_TRUE(store.Get("empty")->empty());
}

TEST_F(FileStoreTest, SizeOfStatsWithoutReading) {
  FileStore store(root_);
  store.Put("a", Bytes("12345"));
  const auto gets_before = store.Stats().gets;
  EXPECT_EQ(*store.SizeOf("a"), 5u);
  EXPECT_FALSE(store.SizeOf("missing").has_value());
  EXPECT_THROW(store.SizeOf("../evil"), std::invalid_argument);
  // SizeOf is a stat, not a read: no Get counted, no bytes_read.
  EXPECT_EQ(store.Stats().gets, gets_before);
  EXPECT_EQ(store.Stats().bytes_read, 0u);
}

TEST_F(FileStoreTest, FsyncOnPutRoundTripAndPersistence) {
  FileStoreOptions opts;
  opts.fsync_on_put = true;
  {
    FileStore store(root_, opts);
    EXPECT_TRUE(store.options().fsync_on_put);
    store.Put("synced", Bytes("durable bytes"));
    EXPECT_EQ(*store.Get("synced"), Bytes("durable bytes"));
    store.Put("synced", Bytes("overwritten"));  // rename over existing
  }
  FileStore reopened(root_);
  EXPECT_EQ(*reopened.Get("synced"), Bytes("overwritten"));
}

// Crash-safety of the temp+rename Put: a writer that died mid-write leaves
// only a *.tmp file, which must be invisible to every read-side operation
// and healed by the next successful Put of the same key.
TEST_F(FileStoreTest, CrashedWriterTempFileInvisibleAndHealed) {
  FileStore store(root_);
  store.Put("live", Bytes("ok"));

  // Model the crash: a torn temp file next to where "victim" would land.
  // Written directly through the filesystem — the store itself never exposes
  // a crash window where the final path holds partial data.
  fs::create_directories(root_ / "dir");
  {
    std::ofstream torn(root_ / "dir" / "victim.tmp", std::ios::binary);
    torn << "partial";
  }

  EXPECT_FALSE(store.Get("dir/victim").has_value());
  EXPECT_FALSE(store.Exists("dir/victim"));
  const auto keys = store.List("");
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], "live");
  EXPECT_EQ(store.TotalBytes(), 2u);  // torn temp bytes don't count

  // A retried Put of the same key replaces the debris with a complete object.
  store.Put("dir/victim", Bytes("complete"));
  EXPECT_EQ(*store.Get("dir/victim"), Bytes("complete"));
  FileStore reopened(root_);
  EXPECT_EQ(*reopened.Get("dir/victim"), Bytes("complete"));
}

// The integration that matters: a full checkpoint lifecycle against the
// filesystem, surviving a "process restart" (new store instance).
TEST_F(FileStoreTest, CheckpointLifecycleSurvivesRestart) {
  dlrm::ModelConfig mcfg;
  mcfg.num_dense = 4;
  mcfg.embedding_dim = 8;
  mcfg.table_rows = {128, 64};
  mcfg.bottom_hidden = {16};
  mcfg.top_hidden = {16};
  mcfg.num_shards = 2;
  data::DatasetConfig dcfg;
  dcfg.num_dense = 4;
  dcfg.tables = {{128, 2, 1.1}, {64, 1, 1.05}};
  data::SyntheticDataset ds(dcfg);
  data::ReaderConfig rcfg;
  rcfg.batch_size = 16;
  rcfg.num_workers = 2;

  dlrm::DlrmModel model(mcfg);
  {
    data::ReaderMaster reader(ds, rcfg);
    core::CheckNRunConfig ccfg;
    ccfg.job = "filejob";
    ccfg.interval_batches = 4;
    ccfg.quantize = false;
    core::CheckNRun cnr(model, reader, std::make_shared<FileStore>(root_), ccfg);
    cnr.Run(3);
  }

  // "Restart": fresh store instance over the same directory.
  auto store = std::make_shared<FileStore>(root_);
  dlrm::DlrmModel restored(mcfg);
  const auto rr = core::RestoreModel(*store, "filejob", restored);
  EXPECT_EQ(rr.batches_trained, 12u);
  EXPECT_TRUE(restored.DenseEquals(model));
  for (std::size_t t = 0; t < model.num_tables(); ++t) {
    for (std::size_t s = 0; s < model.table(t).num_shards(); ++s) {
      EXPECT_EQ(restored.table(t).Shard(s), model.table(t).Shard(s));
    }
  }
}

}  // namespace
}  // namespace cnr::storage
