#include "storage/manifest.h"

#include <gtest/gtest.h>

namespace cnr::storage {
namespace {

Manifest SampleManifest() {
  Manifest m;
  m.checkpoint_id = 42;
  m.kind = CheckpointKind::kIncremental;
  m.parent_id = 40;
  m.batches_trained = 1000;
  m.samples_trained = 128000;
  m.quant.method = quant::Method::kAdaptiveAsymmetric;
  m.quant.bits = 4;
  m.quant.num_bins = 45;
  m.quant.ratio = 0.8;
  m.reader_state = {1, 2, 3, 4};
  m.dense_key = "jobs/j/ckpt/000000000042/dense";
  m.dense_bytes = 5555;
  ChunkInfo c1;
  c1.key = "jobs/j/ckpt/000000000042/t0/s1/c0";
  c1.table_id = 0;
  c1.shard_id = 1;
  c1.num_rows = 100;
  c1.bytes = 2048;
  ChunkInfo c2;
  c2.key = "jobs/j/ckpt/000000000042/t3/s0/c7";
  c2.table_id = 3;
  c2.shard_id = 0;
  c2.num_rows = 7;
  c2.bytes = 99;
  m.chunks = {c1, c2};
  return m;
}

TEST(Manifest, EncodeDecodeRoundTrip) {
  const Manifest m = SampleManifest();
  const auto bytes = m.Encode();
  const Manifest back = Manifest::Decode(bytes);

  EXPECT_EQ(back.checkpoint_id, m.checkpoint_id);
  EXPECT_EQ(back.kind, m.kind);
  EXPECT_EQ(back.parent_id, m.parent_id);
  EXPECT_EQ(back.batches_trained, m.batches_trained);
  EXPECT_EQ(back.samples_trained, m.samples_trained);
  EXPECT_EQ(back.quant.method, m.quant.method);
  EXPECT_EQ(back.quant.bits, m.quant.bits);
  EXPECT_EQ(back.quant.num_bins, m.quant.num_bins);
  EXPECT_EQ(back.quant.ratio, m.quant.ratio);
  EXPECT_EQ(back.reader_state, m.reader_state);
  EXPECT_EQ(back.dense_key, m.dense_key);
  EXPECT_EQ(back.dense_bytes, m.dense_bytes);
  ASSERT_EQ(back.chunks.size(), 2u);
  EXPECT_EQ(back.chunks[0].key, m.chunks[0].key);
  EXPECT_EQ(back.chunks[1].num_rows, m.chunks[1].num_rows);
  EXPECT_EQ(back.chunks[1].bytes, m.chunks[1].bytes);
}

TEST(Manifest, StageTimingsRoundTrip) {
  Manifest m = SampleManifest();
  m.timings.snapshot_us = 11;
  m.timings.plan_us = 22;
  m.timings.encode_us = 33;
  m.timings.store_us = 44;
  m.timings.commit_us = 55;
  m.timings.encode_queue_us = 66;
  m.timings.store_queue_us = 77;
  const Manifest back = Manifest::Decode(m.Encode());
  EXPECT_EQ(back.timings.snapshot_us, 11u);
  EXPECT_EQ(back.timings.plan_us, 22u);
  EXPECT_EQ(back.timings.encode_us, 33u);
  EXPECT_EQ(back.timings.store_us, 44u);
  EXPECT_EQ(back.timings.commit_us, 55u);
  EXPECT_EQ(back.timings.encode_queue_us, 66u);
  EXPECT_EQ(back.timings.store_queue_us, 77u);
}

TEST(Manifest, DecodesVersion1WithoutTimings) {
  // A v1 manifest is a v3 manifest minus the trailing StageTimings block and
  // the v3 cut fields (cut_epoch + empty shard_map count); decoding it must
  // succeed with all-zero timings.
  Manifest m = SampleManifest();
  m.timings.encode_us = 123;  // must NOT survive the downgrade
  auto bytes = m.Encode();
  bytes.resize(bytes.size() - 7 * sizeof(std::uint64_t)   // StageTimings (v2)
               - 2 * sizeof(std::uint64_t));              // cut fields (v3)
  bytes[0] = 1;  // little-endian version field
  const Manifest back = Manifest::Decode(bytes);
  EXPECT_EQ(back.checkpoint_id, m.checkpoint_id);
  ASSERT_EQ(back.chunks.size(), 2u);
  EXPECT_EQ(back.timings.encode_us, 0u);
  EXPECT_EQ(back.timings.snapshot_us, 0u);
}

TEST(Manifest, DecodesVersion2WithoutCutFields) {
  // A v2 manifest ends after StageTimings; v3 decode must accept it with
  // cut_epoch == 0 and an empty shard_map.
  Manifest m = SampleManifest();
  m.cut_epoch = 9;  // must NOT survive the downgrade
  m.shard_map.push_back({0, 41});
  auto bytes = m.Encode();
  bytes.resize(bytes.size() - 2 * sizeof(std::uint64_t)          // cut header
               - (sizeof(std::uint32_t) + sizeof(std::uint64_t)));  // 1 entry
  bytes[0] = 2;
  const Manifest back = Manifest::Decode(bytes);
  EXPECT_EQ(back.checkpoint_id, m.checkpoint_id);
  EXPECT_EQ(back.cut_epoch, 0u);
  EXPECT_TRUE(back.shard_map.empty());
}

TEST(Manifest, CoordinatedCutRoundTrips) {
  Manifest m;
  m.checkpoint_id = 3;
  m.kind = CheckpointKind::kCoordinated;
  m.cut_epoch = 3;
  m.batches_trained = 77;
  m.samples_trained = 7700;
  m.dense_key = "jobs/j/cut/000000000003/dense";
  m.dense_bytes = 1234;
  m.shard_map = {{0, 9}, {1, 10}, {2, 11}, {3, 12}};
  const Manifest back = Manifest::Decode(m.Encode());
  EXPECT_EQ(back.kind, CheckpointKind::kCoordinated);
  EXPECT_EQ(back.cut_epoch, 3u);
  ASSERT_EQ(back.shard_map.size(), 4u);
  EXPECT_EQ(back.shard_map[1].shard_id, 1u);
  EXPECT_EQ(back.shard_map[1].checkpoint_id, 10u);
  EXPECT_EQ(back.shard_map[3].checkpoint_id, 12u);
  EXPECT_TRUE(back.chunks.empty());
}

TEST(ManifestKeys, CutKeysAreSiblingsOfCkpt) {
  EXPECT_EQ(Manifest::CutPrefix("j1", 5), "jobs/j1/cut/000000000005/");
  EXPECT_EQ(Manifest::CutKey("j1", 5), "jobs/j1/cut/000000000005/COORD");
  EXPECT_EQ(Manifest::CutDenseKey("j1", 5), "jobs/j1/cut/000000000005/dense");
  // Cut keys must never collide with checkpoint-id scans over */MANIFEST.
  EXPECT_EQ(Manifest::CutKey("j1", 5).find("/MANIFEST"), std::string::npos);
  EXPECT_EQ(Manifest::CutPrefix("j1", 5).find(Manifest::JobPrefix("j1")), 0u);
}

TEST(Manifest, TotalBytesSumsChunksAndDense) {
  const Manifest m = SampleManifest();
  EXPECT_EQ(m.TotalBytes(), 5555u + 2048u + 99u);
}

TEST(Manifest, BadVersionRejected) {
  auto bytes = SampleManifest().Encode();
  bytes[0] = 0xFF;  // corrupt the version field
  EXPECT_THROW(Manifest::Decode(bytes), util::SerializeError);
}

TEST(Manifest, TruncatedRejected) {
  auto bytes = SampleManifest().Encode();
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW(Manifest::Decode(bytes), util::SerializeError);
}

TEST(ManifestKeys, StableAndSortable) {
  EXPECT_EQ(Manifest::JobPrefix("j1"), "jobs/j1/");
  EXPECT_EQ(Manifest::ManifestKey("j1", 5), "jobs/j1/ckpt/000000000005/MANIFEST");
  EXPECT_EQ(Manifest::DenseKey("j1", 5), "jobs/j1/ckpt/000000000005/dense");
  EXPECT_EQ(Manifest::ChunkKey("j1", 5, 2, 3, 4), "jobs/j1/ckpt/000000000005/t2/s3/c4");
  // Zero-padded ids sort lexicographically in numeric order.
  EXPECT_LT(Manifest::ManifestKey("j1", 9), Manifest::ManifestKey("j1", 10));
  EXPECT_LT(Manifest::ManifestKey("j1", 99), Manifest::ManifestKey("j1", 100));
}

TEST(ManifestKeys, CheckpointPrefixCoversItsObjects) {
  const auto prefix = Manifest::CheckpointPrefix("job", 7);
  EXPECT_EQ(Manifest::ManifestKey("job", 7).find(prefix), 0u);
  EXPECT_EQ(Manifest::DenseKey("job", 7).find(prefix), 0u);
  EXPECT_EQ(Manifest::ChunkKey("job", 7, 0, 0, 0).find(prefix), 0u);
}

TEST(Manifest, EmptyManifestRoundTrips) {
  Manifest m;
  const Manifest back = Manifest::Decode(m.Encode());
  EXPECT_EQ(back.checkpoint_id, 0u);
  EXPECT_EQ(back.kind, CheckpointKind::kFull);
  EXPECT_TRUE(back.chunks.empty());
  EXPECT_TRUE(back.reader_state.empty());
}

}  // namespace
}  // namespace cnr::storage
