#include "storage/object_store.h"

#include <gtest/gtest.h>

#include <thread>

namespace cnr::storage {
namespace {

std::vector<std::uint8_t> Bytes(const std::string& s) { return {s.begin(), s.end()}; }

TEST(InMemoryStore, PutGet) {
  InMemoryStore store;
  store.Put("a", Bytes("hello"));
  const auto got = store.Get("a");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, Bytes("hello"));
}

TEST(InMemoryStore, GetMissing) {
  InMemoryStore store;
  EXPECT_FALSE(store.Get("nope").has_value());
}

TEST(InMemoryStore, OverwriteReplacesAndAccountsBytes) {
  InMemoryStore store;
  store.Put("k", Bytes("aaaa"));
  EXPECT_EQ(store.TotalBytes(), 4u);
  store.Put("k", Bytes("bb"));
  EXPECT_EQ(store.TotalBytes(), 2u);
  EXPECT_EQ(*store.Get("k"), Bytes("bb"));
}

TEST(InMemoryStore, DeleteAccountsBytes) {
  InMemoryStore store;
  store.Put("k", Bytes("abc"));
  EXPECT_TRUE(store.Delete("k"));
  EXPECT_EQ(store.TotalBytes(), 0u);
  EXPECT_FALSE(store.Delete("k"));
  EXPECT_FALSE(store.Exists("k"));
}

TEST(InMemoryStore, ExistsDoesNotCountAsGet) {
  InMemoryStore store;
  store.Put("k", Bytes("abc"));
  EXPECT_TRUE(store.Exists("k"));
  EXPECT_EQ(store.Stats().gets, 0u);
}

TEST(InMemoryStore, ListByPrefix) {
  InMemoryStore store;
  store.Put("jobs/a/1", Bytes("x"));
  store.Put("jobs/a/2", Bytes("x"));
  store.Put("jobs/b/1", Bytes("x"));
  store.Put("other", Bytes("x"));
  const auto keys = store.List("jobs/a/");
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "jobs/a/1");
  EXPECT_EQ(keys[1], "jobs/a/2");
  EXPECT_EQ(store.List("").size(), 4u);
  EXPECT_TRUE(store.List("zzz").empty());
}

TEST(InMemoryStore, StatsAccumulate) {
  InMemoryStore store;
  store.Put("a", Bytes("12345"));
  store.Put("b", Bytes("678"));
  (void)store.Get("a");
  (void)store.Get("missing");
  store.Delete("b");
  const auto stats = store.Stats();
  EXPECT_EQ(stats.puts, 2u);
  EXPECT_EQ(stats.gets, 2u);
  EXPECT_EQ(stats.deletes, 1u);
  EXPECT_EQ(stats.bytes_written, 8u);
  EXPECT_EQ(stats.bytes_read, 5u);
}

TEST(InMemoryStore, EmptyValueAllowed) {
  InMemoryStore store;
  store.Put("empty", {});
  ASSERT_TRUE(store.Get("empty").has_value());
  EXPECT_TRUE(store.Get("empty")->empty());
}

TEST(InMemoryStore, ConcurrentPutsAllLand) {
  InMemoryStore store;
  constexpr int kThreads = 8, kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, t] {
      for (int i = 0; i < kPerThread; ++i) {
        store.Put("t" + std::to_string(t) + "/k" + std::to_string(i), Bytes("v"));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(store.List("").size(), static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_EQ(store.TotalBytes(), static_cast<std::uint64_t>(kThreads * kPerThread));
}

}  // namespace
}  // namespace cnr::storage
