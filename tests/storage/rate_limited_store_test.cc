#include "storage/rate_limited_store.h"

#include <gtest/gtest.h>

#include <memory>

namespace cnr::storage {
namespace {

std::vector<std::uint8_t> Zeros(std::size_t n) { return std::vector<std::uint8_t>(n, 0); }

LinkConfig SimpleLink() {
  LinkConfig cfg;
  cfg.write_bandwidth_bytes_per_sec = 1000.0;  // 1 KB/s
  cfg.read_bandwidth_bytes_per_sec = 2000.0;
  cfg.per_op_latency = util::kMillisecond;
  cfg.replication = 1;
  return cfg;
}

TEST(RateLimitedStore, WriteDurationMath) {
  RateLimitedStore store(std::make_shared<InMemoryStore>(), SimpleLink());
  // 1000 bytes at 1000 B/s = 1 s, plus 1 ms latency.
  EXPECT_EQ(store.WriteDuration(1000), util::kSecond + util::kMillisecond);
  EXPECT_EQ(store.ReadDuration(1000), util::kSecond / 2 + util::kMillisecond);
}

TEST(RateLimitedStore, ReplicationMultipliesWireBytes) {
  auto cfg = SimpleLink();
  cfg.replication = 3;
  RateLimitedStore store(std::make_shared<InMemoryStore>(), cfg);
  EXPECT_EQ(store.WriteDuration(1000), 3 * util::kSecond + util::kMillisecond);
}

TEST(RateLimitedStore, PutAdvancesLink) {
  RateLimitedStore store(std::make_shared<InMemoryStore>(), SimpleLink());
  store.Put("a", Zeros(500));
  EXPECT_EQ(store.LinkIdleAt(), util::kSecond / 2 + util::kMillisecond);
  EXPECT_EQ(store.WriteBusyTime(), util::kSecond / 2 + util::kMillisecond);
  // Data actually lands in the backing store.
  ASSERT_TRUE(store.Get("a").has_value());
}

TEST(RateLimitedStore, SequentialPutsQueue) {
  RateLimitedStore store(std::make_shared<InMemoryStore>(), SimpleLink());
  store.Put("a", Zeros(1000));
  store.Put("b", Zeros(1000));
  EXPECT_EQ(store.LinkIdleAt(), 2 * (util::kSecond + util::kMillisecond));
}

TEST(RateLimitedStore, AdvanceToDefersTransfers) {
  RateLimitedStore store(std::make_shared<InMemoryStore>(), SimpleLink());
  store.AdvanceTo(10 * util::kSecond);
  store.Put("a", Zeros(1000));
  EXPECT_EQ(store.LinkIdleAt(), 11 * util::kSecond + util::kMillisecond);
}

TEST(RateLimitedStore, ReadBusyTracked) {
  RateLimitedStore store(std::make_shared<InMemoryStore>(), SimpleLink());
  store.Put("a", Zeros(2000));
  (void)store.Get("a");
  EXPECT_EQ(store.ReadBusyTime(), util::kSecond + util::kMillisecond);
  // Missing objects consume no link time.
  (void)store.Get("missing");
  EXPECT_EQ(store.ReadBusyTime(), util::kSecond + util::kMillisecond);
}

TEST(RateLimitedStore, DelegatesMetadataOps) {
  auto backing = std::make_shared<InMemoryStore>();
  RateLimitedStore store(backing, SimpleLink());
  store.Put("x/1", Zeros(10));
  store.Put("x/2", Zeros(10));
  EXPECT_EQ(store.List("x/").size(), 2u);
  EXPECT_TRUE(store.Exists("x/1"));
  EXPECT_EQ(store.TotalBytes(), 20u);
  EXPECT_TRUE(store.Delete("x/1"));
  EXPECT_EQ(backing->TotalBytes(), 10u);
}

TEST(RateLimitedStore, InvalidConfigThrows) {
  auto backing = std::make_shared<InMemoryStore>();
  LinkConfig bad = SimpleLink();
  bad.write_bandwidth_bytes_per_sec = 0;
  EXPECT_THROW(RateLimitedStore(backing, bad), std::invalid_argument);
  bad = SimpleLink();
  bad.replication = 0;
  EXPECT_THROW(RateLimitedStore(backing, bad), std::invalid_argument);
  EXPECT_THROW(RateLimitedStore(nullptr, SimpleLink()), std::invalid_argument);
}

}  // namespace
}  // namespace cnr::storage
