#include "storage/retrying_store.h"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>

#include "storage/fault_injection.h"
#include "storage/rate_limited_store.h"
#include "util/sim_clock.h"

namespace cnr::storage {
namespace {

std::vector<std::uint8_t> Bytes(const std::string& s) { return {s.begin(), s.end()}; }

RetryPolicy Attempts(int n) {
  RetryPolicy policy;
  policy.max_attempts = n;
  return policy;
}

// Fails the first `fail_count` Put/Get calls with StoreUnavailable, then
// behaves normally. Counts attempts.
class FlakyStore : public ObjectStore {
 public:
  explicit FlakyStore(int fail_count) : fail_remaining_(fail_count) {}

  void Put(const std::string& key, std::vector<std::uint8_t> data) override {
    ++put_attempts_;
    if (fail_remaining_ > 0) {
      --fail_remaining_;
      throw StoreUnavailable("flaky put");
    }
    inner_.Put(key, std::move(data));
  }
  std::optional<std::vector<std::uint8_t>> Get(const std::string& key) override {
    ++get_attempts_;
    if (fail_remaining_ > 0) {
      --fail_remaining_;
      throw StoreUnavailable("flaky get");
    }
    return inner_.Get(key);
  }
  bool Exists(const std::string& key) override { return inner_.Exists(key); }
  bool Delete(const std::string& key) override { return inner_.Delete(key); }
  std::vector<std::string> List(const std::string& prefix) override {
    return inner_.List(prefix);
  }
  std::uint64_t TotalBytes() override { return inner_.TotalBytes(); }
  StoreStats Stats() override { return inner_.Stats(); }

  int put_attempts() const { return put_attempts_; }
  int get_attempts() const { return get_attempts_; }
  void FailNext(int n) { fail_remaining_ = n; }

 private:
  InMemoryStore inner_;
  int fail_remaining_;
  int put_attempts_ = 0;
  int get_attempts_ = 0;
};

// Throws a non-transient error on every Put.
class BrokenStore : public InMemoryStore {
 public:
  void Put(const std::string&, std::vector<std::uint8_t>) override {
    ++attempts;
    throw std::runtime_error("permanent failure");
  }
  int attempts = 0;
};

TEST(RetryingStore, AbsorbsTransientPutFailures) {
  auto flaky = std::make_shared<FlakyStore>(2);
  RetryingStore store(flaky, Attempts(3));
  store.Put("k", Bytes("v"));
  EXPECT_EQ(flaky->put_attempts(), 3);
  EXPECT_EQ(store.retries_absorbed(), 2u);
  EXPECT_EQ(*store.Get("k"), Bytes("v"));
}

TEST(RetryingStore, PayloadSurvivesFailedAttempts) {
  // The buffer may only be donated to the backing store on the final
  // attempt; earlier failures must not leave a moved-from payload behind.
  auto flaky = std::make_shared<FlakyStore>(2);
  RetryingStore store(flaky, Attempts(3));
  store.Put("k", Bytes("payload"));
  EXPECT_EQ(*store.Get("k"), Bytes("payload"));
}

TEST(RetryingStore, GivesUpAfterMaxAttempts) {
  auto flaky = std::make_shared<FlakyStore>(100);
  RetryingStore store(flaky, Attempts(3));
  EXPECT_THROW(store.Put("k", Bytes("v")), StoreUnavailable);
  EXPECT_EQ(flaky->put_attempts(), 3);
  EXPECT_EQ(store.retries_absorbed(), 0u);
}

TEST(RetryingStore, NonTransientErrorsPropagateImmediately) {
  auto broken = std::make_shared<BrokenStore>();
  RetryingStore store(broken, Attempts(5));
  EXPECT_THROW(store.Put("k", Bytes("v")), std::runtime_error);
  EXPECT_EQ(broken->attempts, 1) << "only StoreUnavailable is retryable";
}

TEST(RetryingStore, RetriesTransientGets) {
  auto flaky = std::make_shared<FlakyStore>(0);
  RetryingStore store(flaky, Attempts(3));
  store.Put("k", Bytes("v"));
  flaky->FailNext(2);
  EXPECT_EQ(*store.Get("k"), Bytes("v"));
  EXPECT_EQ(flaky->get_attempts(), 3);
  EXPECT_EQ(store.retries_absorbed(), 2u);
}

TEST(RetryingStore, MetadataOpsPassThrough) {
  auto inner = std::make_shared<InMemoryStore>();
  RetryingStore store(inner, RetryPolicy{});
  store.Put("a/1", Bytes("x"));
  store.Put("a/2", Bytes("yy"));
  EXPECT_TRUE(store.Exists("a/1"));
  EXPECT_EQ(store.List("a/").size(), 2u);
  EXPECT_EQ(store.TotalBytes(), 3u);
  EXPECT_EQ(store.Stats().puts, 2u);
  EXPECT_TRUE(store.Delete("a/1"));
  EXPECT_FALSE(store.Exists("a/1"));
}

TEST(RetryingStore, ComposesWithFaultInjectionAndRateLimit) {
  // The decorator chain the system runs with: retry over a rate-limited
  // link over a flaky tier.
  FaultConfig fc;
  fc.put_failure_probability = 0.5;
  fc.seed = 3;
  auto flaky =
      std::make_shared<FaultInjectionStore>(std::make_shared<InMemoryStore>(), fc);
  auto limited = std::make_shared<RateLimitedStore>(flaky, LinkConfig{});
  RetryingStore store(limited, Attempts(64));
  for (int i = 0; i < 20; ++i) {
    store.Put("k" + std::to_string(i), Bytes("v"));
  }
  EXPECT_GT(flaky->injected_put_failures(), 0u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(store.Exists("k" + std::to_string(i)));
  }
}

TEST(RetryingStore, NonOwningVariantSharesTheBacking) {
  InMemoryStore inner;
  RetryingStore store(inner, RetryPolicy{});
  store.Put("k", Bytes("v"));
  EXPECT_TRUE(inner.Exists("k"));
}

TEST(RetryingStore, InvalidConstructionThrows) {
  EXPECT_THROW(RetryingStore(nullptr, RetryPolicy{}), std::invalid_argument);
  auto inner = std::make_shared<InMemoryStore>();
  EXPECT_THROW(RetryingStore(inner, Attempts(0)), std::invalid_argument);
}

TEST(RetryingStore, BackoffAdvancesSimClockInsteadOfSleeping) {
  // Simulated-time retry storms: the backoff sleep hook advances a SimClock,
  // so two transient failures cost 1 ms + 2 ms of *simulated* time and no
  // measurable wall time.
  util::SimClock clock;
  auto flaky = std::make_shared<FlakyStore>(2);
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff = std::chrono::microseconds(1000);
  policy.backoff_multiplier = 2.0;
  policy.sleep = util::SimSleeper(clock);
  RetryingStore store(flaky, policy);

  const auto wall_start = std::chrono::steady_clock::now();
  store.Put("k", Bytes("v"));
  const auto wall = std::chrono::steady_clock::now() - wall_start;

  EXPECT_EQ(clock.now(), 3000);  // 1 ms after attempt 1, 2 ms after attempt 2
  EXPECT_EQ(store.retries_absorbed(), 2u);
  EXPECT_LT(wall, std::chrono::milliseconds(500)) << "sim backoff must not wall-sleep";

  // Gets share the same hook and timeline.
  flaky->FailNext(1);
  EXPECT_EQ(*store.Get("k"), Bytes("v"));
  EXPECT_EQ(clock.now(), 4000);
}

TEST(RetryingStore, DefaultBackoffStillSleepsOnWallClock) {
  auto flaky = std::make_shared<FlakyStore>(1);
  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.initial_backoff = std::chrono::microseconds(2000);
  RetryingStore store(flaky, policy);
  const auto wall_start = std::chrono::steady_clock::now();
  store.Put("k", Bytes("v"));
  EXPECT_GE(std::chrono::steady_clock::now() - wall_start, std::chrono::microseconds(2000));
}

}  // namespace
}  // namespace cnr::storage
