// storage::TieredStore: write-back semantics (Put commits near, drain
// replicates far), read-through tier preference, clean-object eviction with
// dirty pinning, Delete cancelling pending drains, strict per-key far-write
// order, the crash-safe dirty-marker protocol (drainer killed at every
// replication point — recovery finds a drained object or a dirty near copy,
// never a far-tier hole), and per-tier occupancy parity between the live
// counters and the offline survey. The concurrency stress runs under TSan in
// CI.
#include "storage/tiered_store.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline/executor.h"
#include "storage/fault_injection.h"
#include "storage/file_store.h"

namespace cnr::storage {
namespace {

namespace fs = std::filesystem;
using core::pipeline::StageExecutor;

std::vector<std::uint8_t> Bytes(const std::string& s) { return {s.begin(), s.end()}; }

// Far-tier decorator whose Puts block until the gate opens — the test can
// hold the drainer at the exact replication point and observe the near tier
// mid-drain.
class GateStore : public ObjectStore {
 public:
  explicit GateStore(std::shared_ptr<ObjectStore> backing)
      : backing_(std::move(backing)) {}

  void Put(const std::string& key, std::vector<std::uint8_t> data) override {
    {
      std::unique_lock<std::mutex> lock(mu_);
      ++entered_;
      cv_.notify_all();
      cv_.wait(lock, [this] { return open_; });
    }
    backing_->Put(key, std::move(data));
  }
  std::optional<std::vector<std::uint8_t>> Get(const std::string& key) override {
    return backing_->Get(key);
  }
  bool Exists(const std::string& key) override { return backing_->Exists(key); }
  bool Delete(const std::string& key) override { return backing_->Delete(key); }
  std::vector<std::string> List(const std::string& prefix) override {
    return backing_->List(prefix);
  }
  std::uint64_t TotalBytes() override { return backing_->TotalBytes(); }
  StoreStats Stats() override { return backing_->Stats(); }
  std::optional<std::uint64_t> SizeOf(const std::string& key) override {
    return backing_->SizeOf(key);
  }

  void Open() {
    std::lock_guard<std::mutex> lock(mu_);
    open_ = true;
    cv_.notify_all();
  }
  // Re-arms the gate: Puts arriving after this block again.
  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    open_ = false;
  }
  // Blocks until `count` Puts have reached the gate.
  void AwaitPutsEntered(int count) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this, count] { return entered_ >= count; });
  }

 private:
  std::shared_ptr<ObjectStore> backing_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
  int entered_ = 0;
};

// Near-tier decorator that can hold the *unlocked* data write of designated
// keys mid-flight — metadata writes (dirty markers, which run under the
// tiered store's lock) always pass straight through.
class HoldStore : public ObjectStore {
 public:
  explicit HoldStore(std::shared_ptr<ObjectStore> backing)
      : backing_(std::move(backing)) {}

  void Put(const std::string& key, std::vector<std::uint8_t> data) override {
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (held_.contains(key)) {
        ++blocked_;
        cv_.notify_all();
        cv_.wait(lock, [this, &key] { return !held_.contains(key); });
      }
    }
    backing_->Put(key, std::move(data));
  }
  std::optional<std::vector<std::uint8_t>> Get(const std::string& key) override {
    return backing_->Get(key);
  }
  bool Exists(const std::string& key) override { return backing_->Exists(key); }
  bool Delete(const std::string& key) override { return backing_->Delete(key); }
  std::vector<std::string> List(const std::string& prefix) override {
    return backing_->List(prefix);
  }
  std::uint64_t TotalBytes() override { return backing_->TotalBytes(); }
  StoreStats Stats() override { return backing_->Stats(); }
  std::optional<std::uint64_t> SizeOf(const std::string& key) override {
    return backing_->SizeOf(key);
  }

  void Hold(const std::string& key) {
    std::lock_guard<std::mutex> lock(mu_);
    held_.insert(key);
  }
  void Release(const std::string& key) {
    std::lock_guard<std::mutex> lock(mu_);
    held_.erase(key);
    cv_.notify_all();
  }
  // Blocks until `count` Puts are waiting on a held key.
  void AwaitBlocked(int count) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this, count] { return blocked_ >= count; });
  }

 private:
  std::shared_ptr<ObjectStore> backing_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::set<std::string> held_;
  int blocked_ = 0;
};

class TieredStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("cnr_tiered_test_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(root_);
  }
  void TearDown() override { fs::remove_all(root_); }
  fs::path root_;
};

// Parity: the live counters must equal the offline survey of each tier.
void ExpectParity(TieredStore& store) {
  const TierStats live = store.tier_stats();
  const TierSurvey near_survey = SurveyTier(store.near_tier());
  const TierSurvey far_survey = SurveyTier(store.far_tier());
  EXPECT_EQ(live.near_objects, near_survey.objects);
  EXPECT_EQ(live.near_bytes, near_survey.bytes);
  EXPECT_EQ(live.dirty_objects, near_survey.dirty_objects);
  EXPECT_EQ(live.dirty_bytes, near_survey.dirty_bytes);
  EXPECT_EQ(live.far_objects, far_survey.objects);
  EXPECT_EQ(live.far_bytes, far_survey.bytes);
}

TEST_F(TieredStoreTest, WriteBackBasics) {
  auto near_tier = std::make_shared<InMemoryStore>();
  auto far_tier = std::make_shared<InMemoryStore>();
  StageExecutor exec;
  TieredStore store(near_tier, far_tier, exec);

  store.Put("jobs/a/1", Bytes("hello"));
  EXPECT_EQ(*store.Get("jobs/a/1"), Bytes("hello"));
  store.FlushDrains();

  // Replicated and clean: the far tier holds the copy, the marker is gone.
  EXPECT_EQ(*far_tier->Get("jobs/a/1"), Bytes("hello"));
  EXPECT_TRUE(near_tier->List(TieredStore::kDirtyPrefix).empty());
  const TierStats stats = store.tier_stats();
  EXPECT_EQ(stats.drained_objects, 1u);
  EXPECT_EQ(stats.drained_bytes, 5u);
  EXPECT_EQ(stats.dirty_objects, 0u);
  EXPECT_EQ(stats.near_hits, 1u);
  EXPECT_EQ(stats.far_hits, 0u);
  ExpectParity(store);
}

TEST_F(TieredStoreTest, ReadThroughPrefersNearAndCountsTiers) {
  auto near_tier = std::make_shared<InMemoryStore>();
  auto far_tier = std::make_shared<InMemoryStore>();
  StageExecutor exec;
  TieredStore store(near_tier, far_tier, exec);

  store.Put("k", Bytes("v"));
  store.FlushDrains();
  const std::uint64_t far_gets_before = far_tier->Stats().gets;
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(store.Get("k").has_value());
  // Every read of a near-resident object stays off the far link.
  EXPECT_EQ(far_tier->Stats().gets, far_gets_before);
  EXPECT_EQ(store.tier_stats().near_hits, 5u);

  // A key only the far tier has is still reachable (read-through).
  far_tier->Put("far-only", Bytes("old"));
  EXPECT_EQ(*store.Get("far-only"), Bytes("old"));
  EXPECT_EQ(store.tier_stats().far_hits, 1u);
  EXPECT_EQ(store.tier_stats().misses, 0u);
  EXPECT_FALSE(store.Get("absent").has_value());
  EXPECT_EQ(store.tier_stats().misses, 1u);
}

TEST_F(TieredStoreTest, CleanEvictionFallsBackToFarTier) {
  auto near_tier = std::make_shared<InMemoryStore>();
  auto far_tier = std::make_shared<InMemoryStore>();
  StageExecutor exec;
  TieredStoreConfig cfg;
  cfg.near_capacity_bytes = 6;  // room for one 4-byte object, not two
  TieredStore store(near_tier, far_tier, exec, cfg);

  store.Put("a", Bytes("aaaa"));
  store.FlushDrains();
  store.Put("b", Bytes("bbbb"));
  store.FlushDrains();

  // "a" (oldest clean) was evicted to make room; both remain readable.
  const TierStats stats = store.tier_stats();
  EXPECT_EQ(stats.evicted_objects, 1u);
  EXPECT_LE(stats.near_bytes, cfg.near_capacity_bytes);
  EXPECT_EQ(*store.Get("a"), Bytes("aaaa"));  // far hit
  EXPECT_EQ(*store.Get("b"), Bytes("bbbb"));  // near hit
  EXPECT_EQ(store.tier_stats().far_hits, 1u);
  EXPECT_EQ(store.tier_stats().near_hits, 1u);
  ExpectParity(store);
}

TEST_F(TieredStoreTest, DirtyObjectsArePinnedAgainstEviction) {
  auto near_tier = std::make_shared<InMemoryStore>();
  auto far_inner = std::make_shared<InMemoryStore>();
  auto gate = std::make_shared<GateStore>(far_inner);
  StageExecutor exec;
  TieredStoreConfig cfg;
  cfg.near_capacity_bytes = 2;  // smaller than the object
  TieredStore store(near_tier, gate, exec, cfg);

  store.Put("big", Bytes("0123456789"));
  gate->AwaitPutsEntered(1);
  // Dirty and over capacity: pinned, not evicted.
  EXPECT_EQ(store.tier_stats().near_bytes, 10u);
  EXPECT_EQ(store.tier_stats().dirty_objects, 1u);
  EXPECT_TRUE(near_tier->Exists("big"));

  gate->Open();
  store.FlushDrains();
  // Clean now — capacity enforcement evicts it from the near tier.
  EXPECT_EQ(store.tier_stats().near_bytes, 0u);
  EXPECT_EQ(store.tier_stats().evicted_objects, 1u);
  EXPECT_EQ(*store.Get("big"), Bytes("0123456789"));  // far hit
  ExpectParity(store);
}

TEST_F(TieredStoreTest, DeleteCancelsPendingDrain) {
  auto near_tier = std::make_shared<InMemoryStore>();
  auto far_inner = std::make_shared<InMemoryStore>();
  auto gate = std::make_shared<GateStore>(far_inner);
  StageExecutor exec;
  TieredStore store(near_tier, gate, exec);

  store.Put("victim", Bytes("data"));
  gate->AwaitPutsEntered(1);  // replication of "victim" is in flight
  EXPECT_TRUE(store.Delete("victim"));
  EXPECT_FALSE(store.Get("victim").has_value());
  EXPECT_FALSE(store.Exists("victim"));

  gate->Open();
  store.FlushDrains();
  // The late far Put must not resurrect the deleted key.
  EXPECT_FALSE(far_inner->Exists("victim"));
  EXPECT_FALSE(store.Exists("victim"));
  EXPECT_TRUE(store.List("").empty());
  ExpectParity(store);
}

TEST_F(TieredStoreTest, DeleteBeforeDrainStartsNeverTouchesFar) {
  auto near_tier = std::make_shared<InMemoryStore>();
  auto far_inner = std::make_shared<InMemoryStore>();
  auto gate = std::make_shared<GateStore>(far_inner);
  StageExecutor exec;
  TieredStore store(near_tier, gate, exec);

  // Hold the drain worker on a sacrificial key so "victim" sits queued.
  store.Put("hold", Bytes("x"));
  gate->AwaitPutsEntered(1);
  store.Put("victim", Bytes("data"));
  EXPECT_TRUE(store.Delete("victim"));

  gate->Open();
  store.FlushDrains();
  EXPECT_TRUE(far_inner->Exists("hold"));
  EXPECT_FALSE(far_inner->Exists("victim"));
  ExpectParity(store);
}

TEST_F(TieredStoreTest, RewriteMidDrainReplicatesNewestGeneration) {
  auto near_tier = std::make_shared<InMemoryStore>();
  auto far_inner = std::make_shared<InMemoryStore>();
  auto gate = std::make_shared<GateStore>(far_inner);
  StageExecutor exec;
  TieredStore store(near_tier, gate, exec);

  store.Put("k", Bytes("v1"));
  gate->AwaitPutsEntered(1);  // v1 replication in flight
  store.Put("k", Bytes("v2"));  // deferred: strict per-key order
  gate->Open();
  store.FlushDrains();

  EXPECT_EQ(*far_inner->Get("k"), Bytes("v2"));
  EXPECT_EQ(*store.Get("k"), Bytes("v2"));
  EXPECT_EQ(store.tier_stats().dirty_objects, 0u);
  ExpectParity(store);
}

TEST_F(TieredStoreTest, MetaNamespaceRejected) {
  auto near_tier = std::make_shared<InMemoryStore>();
  auto far_tier = std::make_shared<InMemoryStore>();
  StageExecutor exec;
  TieredStore store(near_tier, far_tier, exec);

  EXPECT_THROW(store.Put(".tiered/evil", Bytes("x")), std::invalid_argument);
  EXPECT_THROW(store.Get(".tiered/dirty/k"), std::invalid_argument);
  EXPECT_THROW(store.Delete(".tiered/STATS"), std::invalid_argument);
  EXPECT_THROW(store.Exists(".tiered/x"), std::invalid_argument);
}

TEST_F(TieredStoreTest, UnionListTotalBytesAndSizeOf) {
  auto near_tier = std::make_shared<InMemoryStore>();
  auto far_tier = std::make_shared<InMemoryStore>();
  far_tier->Put("far-only", Bytes("123"));
  StageExecutor exec;
  TieredStore store(near_tier, far_tier, exec);

  store.Put("near-new", Bytes("12345"));
  // Dirty object visible in List/Exists/SizeOf before it ever reaches far.
  const auto keys = store.List("");
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "far-only");
  EXPECT_EQ(keys[1], "near-new");
  EXPECT_EQ(store.TotalBytes(), 8u);
  EXPECT_EQ(*store.SizeOf("near-new"), 5u);
  EXPECT_EQ(*store.SizeOf("far-only"), 3u);
  EXPECT_FALSE(store.SizeOf("absent").has_value());
  store.FlushDrains();
  EXPECT_EQ(store.TotalBytes(), 8u);  // replication adds no logical bytes
}

TEST_F(TieredStoreTest, PutAfterShutdownThrows) {
  auto near_tier = std::make_shared<InMemoryStore>();
  auto far_tier = std::make_shared<InMemoryStore>();
  StageExecutor exec;
  TieredStore store(near_tier, far_tier, exec);
  store.Put("k", Bytes("v"));
  store.Shutdown();
  EXPECT_THROW(store.Put("k2", Bytes("v")), StoreUnavailable);
  // The clean shutdown drained the backlog and persisted counters.
  EXPECT_TRUE(far_tier->Exists("k"));
  EXPECT_TRUE(near_tier->Exists(TieredStore::kStatsKey));
  const auto counters = DecodeShutdownCounters(*near_tier->Get(TieredStore::kStatsKey));
  ASSERT_TRUE(counters.has_value());
  EXPECT_EQ(counters->drained_objects, 1u);
}

TEST_F(TieredStoreTest, RecoveryDiscardsStaleMarkerWithoutData) {
  auto near_tier = std::make_shared<FileStore>(root_);
  auto far_tier = std::make_shared<InMemoryStore>();
  // Crash between marker and data: the Put never returned, so recovery must
  // forget the key entirely.
  near_tier->Put(std::string(TieredStore::kDirtyPrefix) + "ghost",
                 std::vector<std::uint8_t>(8, 0));
  StageExecutor exec;
  TieredStore store(near_tier, far_tier, exec);
  store.FlushDrains();
  EXPECT_TRUE(store.List("").empty());
  EXPECT_TRUE(near_tier->List(TieredStore::kDirtyPrefix).empty());
  EXPECT_FALSE(far_tier->Exists("ghost"));
  ExpectParity(store);
}

// The drain-boundary crash sweep: for every replication point n, the far
// tier's nth Put dies (process-kill and torn-write shapes), the store is
// destroyed without flushing (a crash), and a fresh instance recovers over
// the same tiers. Invariant at every n: each object is either fully drained
// in the far tier or dirty-marked in the near tier — never a far-tier hole —
// and after the far tier heals, a flush converges to full replication.
TEST_F(TieredStoreTest, DrainBoundaryCrashSweep) {
  constexpr int kObjects = 4;
  for (const bool torn : {false, true}) {
    for (int n = 1; n <= kObjects; ++n) {
      const fs::path near_dir =
          root_ / (std::string(torn ? "torn" : "kill") + std::to_string(n));
      auto far_inner = std::make_shared<InMemoryStore>();
      FaultConfig fault;
      fault.fail_nth_put = static_cast<std::uint64_t>(n);
      fault.torn_put = torn;
      auto far_tier = std::make_shared<FaultInjectionStore>(far_inner, fault);

      std::map<std::string, std::vector<std::uint8_t>> expected;
      {
        auto near_tier = std::make_shared<FileStore>(near_dir);
        StageExecutor exec;
        TieredStoreConfig cfg;
        cfg.drain_attempts = 1;   // first failure parks the object
        cfg.flush_on_close = false;  // crash: no drain on destruction
        TieredStore store(near_tier, far_tier, exec, cfg);
        for (int i = 0; i < kObjects; ++i) {
          const std::string key = "jobs/a/obj" + std::to_string(i);
          expected[key] = Bytes("payload-" + std::to_string(i) + "-" +
                                std::string(32, static_cast<char>('a' + i)));
          store.Put(key, expected[key]);
        }
        store.FlushDrains();  // settles: replicated or parked, nothing queued
        // `store` and `exec` die here without flushing — the crash.
      }

      // Post-crash invariant over the raw tiers.
      FileStore near_raw(near_dir);
      std::set<std::string> dirty;
      const std::string dirty_prefix = TieredStore::kDirtyPrefix;
      for (const auto& marker : near_raw.List(dirty_prefix)) {
        dirty.insert(marker.substr(dirty_prefix.size()));
      }
      for (const auto& [key, value] : expected) {
        const auto far_copy = far_inner->Get(key);
        if (dirty.contains(key)) {
          // Dirty: the authoritative copy is in the near tier, intact.
          ASSERT_EQ(*near_raw.Get(key), value) << key;
        } else {
          // Clean: the far copy must exist and be complete — never a hole,
          // never a silently torn object.
          ASSERT_TRUE(far_copy.has_value()) << key << " (n=" << n << ")";
          ASSERT_EQ(*far_copy, value) << key;
        }
      }

      // Heal the far tier, recover, and converge.
      far_tier->SetConfig(FaultConfig{});
      auto near_tier = std::make_shared<FileStore>(near_dir);
      StageExecutor exec;
      TieredStore recovered(near_tier, far_tier, exec);
      recovered.FlushDrains();
      for (const auto& [key, value] : expected) {
        ASSERT_EQ(*far_inner->Get(key), value) << key;
        ASSERT_EQ(*recovered.Get(key), value) << key;
      }
      EXPECT_TRUE(near_tier->List(dirty_prefix).empty());
      EXPECT_EQ(recovered.tier_stats().dirty_objects, 0u);
      ExpectParity(recovered);
    }
  }
}

// Mid-drain restart with a fully dead far tier: everything parks as stuck,
// the "crash" loses no data, and tracked stats == survey on both sides of
// the restart and of the eventual flush.
TEST_F(TieredStoreTest, MidDrainRestartKeepsOccupancyParity) {
  constexpr int kObjects = 3;
  auto far_inner = std::make_shared<InMemoryStore>();
  FaultConfig fault;
  fault.put_failure_probability = 1.0;
  auto far_tier = std::make_shared<FaultInjectionStore>(far_inner, fault);

  {
    auto near_tier = std::make_shared<FileStore>(root_);
    StageExecutor exec;
    TieredStoreConfig cfg;
    cfg.drain_attempts = 1;
    cfg.flush_on_close = false;
    TieredStore store(near_tier, far_tier, exec, cfg);
    for (int i = 0; i < kObjects; ++i) {
      store.Put("obj" + std::to_string(i), Bytes(std::string(16, 'x')));
    }
    store.FlushDrains();  // terminates: stuck objects do not block the flush
    const TierStats stats = store.tier_stats();
    EXPECT_EQ(stats.stuck_objects, static_cast<std::uint64_t>(kObjects));
    EXPECT_EQ(stats.dirty_objects, static_cast<std::uint64_t>(kObjects));
    EXPECT_GE(stats.drain_failures, static_cast<std::uint64_t>(kObjects));
    ExpectParity(store);
  }

  far_tier->SetConfig(FaultConfig{});
  auto near_tier = std::make_shared<FileStore>(root_);
  StageExecutor exec;
  TieredStore recovered(near_tier, far_tier, exec);
  recovered.FlushDrains();
  EXPECT_EQ(recovered.tier_stats().drained_objects,
            static_cast<std::uint64_t>(kObjects));
  EXPECT_EQ(recovered.tier_stats().dirty_objects, 0u);
  for (int i = 0; i < kObjects; ++i) {
    EXPECT_TRUE(far_inner->Exists("obj" + std::to_string(i)));
  }
  ExpectParity(recovered);
}

// The crash-safety race the marker protocol must survive: a Put whose first
// critical section sees the key dirty (marker already on disk — no write),
// then loses the marker while its data write runs unlocked because the
// in-flight drain completes and the clean transition deletes it. The
// clean->dirty transition in the Put's second critical section must re-assert
// the marker; without it, a crash here would make recovery call the near
// object clean while the far tier still holds the older generation — serving
// stale data after eviction, losing an acknowledged write.
TEST_F(TieredStoreTest, CleanTransitionDuringPutReassertsDirtyMarker) {
  auto near_inner = std::make_shared<InMemoryStore>();
  auto hold = std::make_shared<HoldStore>(near_inner);
  auto far_inner = std::make_shared<InMemoryStore>();
  auto gate = std::make_shared<GateStore>(far_inner);
  StageExecutor exec;
  TieredStore store(hold, gate, exec);
  const std::string marker = std::string(TieredStore::kDirtyPrefix) + "k";

  store.Put("k", Bytes("v1"));
  gate->AwaitPutsEntered(1);  // replication of v1 in flight at the far tier

  hold->Hold("k");
  std::thread writer([&store] { store.Put("k", Bytes("v2-newer-bytes")); });
  hold->AwaitBlocked(1);  // v2 sits in the unlocked data-write window

  // Let v1's drain finish: FinishDrain cleans "k" and deletes the marker
  // while v2's Put is mid-flight.
  gate->Open();
  while (store.tier_stats().dirty_objects != 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_FALSE(near_inner->Exists(marker));

  // Re-arm the far gate so v2's own drain blocks and the dirty window below
  // is observable, then let v2 land.
  gate->Close();
  hold->Release("k");
  writer.join();

  // "k" is dirty again and the marker MUST be back on disk — a crash in this
  // state has to recover the near copy as authoritative.
  EXPECT_EQ(store.tier_stats().dirty_objects, 1u);
  EXPECT_TRUE(near_inner->Exists(marker));
  ExpectParity(store);  // the survey sees the same dirty object

  gate->Open();
  store.FlushDrains();
  EXPECT_EQ(*far_inner->Get("k"), Bytes("v2-newer-bytes"));
  EXPECT_FALSE(near_inner->Exists(marker));
  ExpectParity(store);
}

// Same-key Puts race their unlocked near data writes: content is
// last-writer-wins, and the recorded size must follow the surviving content
// so occupancy parity holds and the drainer converges the far tier onto it.
TEST_F(TieredStoreTest, ConcurrentSameKeyPutsKeepParityAndConverge) {
  auto near_tier = std::make_shared<InMemoryStore>();
  auto far_tier = std::make_shared<InMemoryStore>();
  StageExecutor exec;
  TieredStore store(near_tier, far_tier, exec);

  constexpr int kThreads = 4;
  constexpr int kIters = 100;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, t] {
      // Thread-distinct sizes make a stale recorded size detectable.
      const std::string value(8 + 16 * static_cast<std::size_t>(t),
                              static_cast<char>('a' + t));
      for (int i = 0; i < kIters; ++i) store.Put("hot", Bytes(value));
    });
  }
  for (auto& th : threads) th.join();

  const auto content = near_tier->Get("hot");
  ASSERT_TRUE(content.has_value());
  EXPECT_EQ(*store.SizeOf("hot"), content->size());

  store.FlushDrains();
  EXPECT_EQ(*far_tier->Get("hot"), *near_tier->Get("hot"));
  EXPECT_EQ(store.tier_stats().dirty_objects, 0u);
  ExpectParity(store);
}

// Concurrent Put/Get/Delete against a live drainer; runs under TSan in CI.
TEST_F(TieredStoreTest, ConcurrentPutGetDeleteVsDrain) {
  auto near_tier = std::make_shared<InMemoryStore>();
  auto far_tier = std::make_shared<InMemoryStore>();
  StageExecutor exec;
  TieredStoreConfig cfg;
  cfg.drain_workers = 2;
  cfg.max_inflight_drain_bytes = 256;  // small window: exercise deferral
  TieredStore store(near_tier, far_tier, exec, cfg);

  constexpr int kThreads = 3;
  constexpr int kIters = 200;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, &failed, t] {
      try {
        for (int i = 0; i < kIters; ++i) {
          const std::string key = "k" + std::to_string((t * 7 + i) % 11);
          switch (i % 4) {
            case 0:
            case 1:
              store.Put(key, Bytes("v" + std::to_string(t) + "." + std::to_string(i)));
              break;
            case 2:
              store.Get(key);
              break;
            default:
              store.Delete(key);
              break;
          }
        }
      } catch (...) {
        failed.store(true);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(failed.load());

  store.FlushDrains();
  // Converged: no backlog, every surviving key readable, parity holds.
  EXPECT_EQ(store.tier_stats().dirty_objects, 0u);
  for (const auto& key : store.List("")) {
    EXPECT_TRUE(store.Get(key).has_value()) << key;
  }
  ExpectParity(store);
}

}  // namespace
}  // namespace cnr::storage
