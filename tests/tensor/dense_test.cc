#include "tensor/dense.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"
#include "util/serialize.h"

namespace cnr::tensor {
namespace {

TEST(Matrix, ShapeAndAccess) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.size(), 12u);
  m.at(2, 3) = 5.0f;
  EXPECT_EQ(m.at(2, 3), 5.0f);
  EXPECT_EQ(m.Row(2)[3], 5.0f);
}

TEST(Matrix, FillAndFlat) {
  Matrix m(2, 2);
  m.Fill(1.5f);
  for (const float v : m.Flat()) EXPECT_EQ(v, 1.5f);
}

TEST(Matrix, KaimingInitBounded) {
  util::Rng rng(1);
  Matrix m(16, 64);
  m.InitKaiming(rng, 64);
  const float bound = std::sqrt(6.0f / 64.0f);
  bool any_nonzero = false;
  for (const float v : m.Flat()) {
    EXPECT_LE(std::fabs(v), bound);
    any_nonzero |= (v != 0.0f);
  }
  EXPECT_TRUE(any_nonzero);
}

TEST(Matrix, SerializeRoundTrip) {
  util::Rng rng(2);
  Matrix m(5, 7);
  m.InitKaiming(rng, 7);
  util::Writer w;
  m.Serialize(w);
  util::Reader r(w.bytes());
  EXPECT_EQ(Matrix::Deserialize(r), m);
}

TEST(MatVec, KnownValues) {
  Matrix w(2, 3);
  // w = [[1,2,3],[4,5,6]]
  float v = 1.0f;
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) w.at(r, c) = v++;
  }
  const std::vector<float> x = {1.0f, 0.0f, -1.0f};
  const std::vector<float> b = {0.5f, -0.5f};
  std::vector<float> y(2);
  MatVec(w, x, b, y);
  EXPECT_FLOAT_EQ(y[0], 1.0f - 3.0f + 0.5f);
  EXPECT_FLOAT_EQ(y[1], 4.0f - 6.0f - 0.5f);
}

TEST(MatVec, ShapeMismatchThrows) {
  Matrix w(2, 3);
  std::vector<float> x(2), b(2), y(2);
  EXPECT_THROW(MatVec(w, x, b, y), std::invalid_argument);
}

// Numerical gradient check for MatVecBackward.
TEST(MatVecBackward, MatchesNumericalGradient) {
  util::Rng rng(3);
  Matrix w(4, 5);
  w.InitKaiming(rng, 5);
  std::vector<float> x(5), b(4, 0.0f);
  for (auto& v : x) v = rng.NextFloat(-1, 1);

  // Scalar loss L = sum(y). dL/dy = ones.
  const auto loss = [&](const Matrix& wm, const std::vector<float>& xv) {
    std::vector<float> y(4);
    MatVec(wm, xv, b, y);
    float acc = 0;
    for (const float v : y) acc += v;
    return acc;
  };

  Matrix dw(4, 5);
  std::vector<float> db(4, 0.0f), dx(5, 0.0f);
  const std::vector<float> dy(4, 1.0f);
  MatVecBackward(w, x, dy, dx, dw, db);

  const float eps = 1e-3f;
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 5; ++c) {
      Matrix wp = w;
      wp.at(r, c) += eps;
      Matrix wm = w;
      wm.at(r, c) -= eps;
      const float num = (loss(wp, x) - loss(wm, x)) / (2 * eps);
      EXPECT_NEAR(dw.at(r, c), num, 5e-2) << "dw[" << r << "," << c << "]";
    }
  }
  for (std::size_t c = 0; c < 5; ++c) {
    auto xp = x, xm = x;
    xp[c] += eps;
    xm[c] -= eps;
    const float num = (loss(w, xp) - loss(w, xm)) / (2 * eps);
    EXPECT_NEAR(dx[c], num, 5e-2) << "dx[" << c << "]";
  }
  for (const float g : db) EXPECT_FLOAT_EQ(g, 1.0f);
}

TEST(MatVecBackward, AccumulatesAcrossCalls) {
  Matrix w(1, 1);
  w.at(0, 0) = 2.0f;
  Matrix dw(1, 1);
  std::vector<float> db(1, 0.0f);
  const std::vector<float> x = {3.0f}, dy = {1.0f};
  MatVecBackward(w, x, dy, {}, dw, db);
  MatVecBackward(w, x, dy, {}, dw, db);
  EXPECT_FLOAT_EQ(dw.at(0, 0), 6.0f);
  EXPECT_FLOAT_EQ(db[0], 2.0f);
}

TEST(Relu, ForwardBackward) {
  std::vector<float> x = {-1.0f, 0.0f, 2.0f};
  ReluForward(x);
  EXPECT_EQ(x, (std::vector<float>{0.0f, 0.0f, 2.0f}));
  std::vector<float> dy = {5.0f, 5.0f, 5.0f};
  ReluBackward(x, dy);
  EXPECT_EQ(dy, (std::vector<float>{0.0f, 0.0f, 5.0f}));
}

TEST(VectorOps, DotAxpyScale) {
  const std::vector<float> a = {1, 2, 3}, b = {4, 5, 6};
  EXPECT_FLOAT_EQ(Dot(a, b), 32.0f);
  std::vector<float> y = {1, 1, 1};
  Axpy(2.0f, a, y);
  EXPECT_EQ(y, (std::vector<float>{3, 5, 7}));
  Scale(y, 0.5f);
  EXPECT_EQ(y, (std::vector<float>{1.5f, 2.5f, 3.5f}));
}

TEST(SigmoidFn, KnownValues) {
  EXPECT_FLOAT_EQ(Sigmoid(0.0f), 0.5f);
  EXPECT_GT(Sigmoid(10.0f), 0.9999f);
  EXPECT_LT(Sigmoid(-10.0f), 0.0001f);
}

}  // namespace
}  // namespace cnr::tensor
