#include "tensor/embedding.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace cnr::tensor {
namespace {

TEST(EmbeddingTable, ConstructionAndShape) {
  EmbeddingTable t("emb", 100, 16);
  EXPECT_EQ(t.name(), "emb");
  EXPECT_EQ(t.num_rows(), 100u);
  EXPECT_EQ(t.dim(), 16u);
  EXPECT_EQ(t.ParameterCount(), 1600u);
  EXPECT_EQ(t.StateBytes(), 1600u * 4 + 100u * 4);
}

TEST(EmbeddingTable, EmptyShapeThrows) {
  EXPECT_THROW(EmbeddingTable("x", 0, 4), std::invalid_argument);
  EXPECT_THROW(EmbeddingTable("x", 4, 0), std::invalid_argument);
}

TEST(EmbeddingTable, InitUniformBounded) {
  util::Rng rng(1);
  EmbeddingTable t("emb", 50, 8);
  t.InitUniform(rng);
  const float bound = 1.0f / 50.0f;
  for (std::size_t r = 0; r < 50; ++r) {
    for (const float v : t.Row(r)) EXPECT_LE(std::fabs(v), bound);
  }
}

TEST(EmbeddingTable, AdagradUpdateMath) {
  EmbeddingTable t("emb", 4, 2);
  // Row starts at zero; adagrad accumulator starts at zero.
  const std::vector<float> grad = {3.0f, 4.0f};  // mean square = 12.5
  t.ApplySparseAdagrad(1, grad, /*lr=*/0.1f, /*eps=*/0.0f);
  EXPECT_FLOAT_EQ(t.AdagradState(1), 12.5f);
  const float step = 0.1f / std::sqrt(12.5f);
  EXPECT_FLOAT_EQ(t.Row(1)[0], -step * 3.0f);
  EXPECT_FLOAT_EQ(t.Row(1)[1], -step * 4.0f);

  // Second update accumulates into the same state.
  t.ApplySparseAdagrad(1, grad, 0.1f, 0.0f);
  EXPECT_FLOAT_EQ(t.AdagradState(1), 25.0f);
}

TEST(EmbeddingTable, AdagradShrinksEffectiveStep) {
  EmbeddingTable t("emb", 1, 1);
  const std::vector<float> grad = {1.0f};
  t.ApplySparseAdagrad(0, grad, 1.0f, 0.0f);
  const float first_step = -t.Row(0)[0];
  const float before = t.Row(0)[0];
  t.ApplySparseAdagrad(0, grad, 1.0f, 0.0f);
  const float second_step = before - t.Row(0)[0];
  EXPECT_LT(second_step, first_step);
}

TEST(EmbeddingTable, UpdateValidation) {
  EmbeddingTable t("emb", 4, 2);
  const std::vector<float> good = {1.0f, 1.0f};
  const std::vector<float> bad = {1.0f};
  EXPECT_THROW(t.ApplySparseAdagrad(4, good, 0.1f, 0.0f), std::out_of_range);
  EXPECT_THROW(t.ApplySparseAdagrad(0, bad, 0.1f, 0.0f), std::invalid_argument);
}

TEST(EmbeddingTable, TrackerObservesModifiedRows) {
  EmbeddingTable t("emb", 10, 2);
  std::vector<std::size_t> tracked;
  t.SetTracker([&](std::size_t r) { tracked.push_back(r); });
  const std::vector<float> grad = {1.0f, 1.0f};
  t.ApplySparseAdagrad(3, grad, 0.1f, 0.0f);
  t.ApplySparseAdagrad(7, grad, 0.1f, 0.0f);
  t.ApplySparseAdagrad(3, grad, 0.1f, 0.0f);
  EXPECT_EQ(tracked, (std::vector<std::size_t>{3, 7, 3}));

  t.ClearTracker();
  t.ApplySparseAdagrad(5, grad, 0.1f, 0.0f);
  EXPECT_EQ(tracked.size(), 3u);  // no longer observed
}

TEST(EmbeddingTable, RestoreRowDoesNotTrack) {
  EmbeddingTable t("emb", 4, 2);
  int tracked = 0;
  t.SetTracker([&](std::size_t) { ++tracked; });
  const std::vector<float> w = {1.0f, 2.0f};
  t.RestoreRow(2, w, 9.0f);
  EXPECT_EQ(tracked, 0);  // recovery writes are not "modifications"
  EXPECT_EQ(t.Row(2)[0], 1.0f);
  EXPECT_EQ(t.Row(2)[1], 2.0f);
  EXPECT_EQ(t.AdagradState(2), 9.0f);
}

TEST(EmbeddingTable, RestoreValidation) {
  EmbeddingTable t("emb", 4, 2);
  const std::vector<float> w = {1.0f, 2.0f};
  const std::vector<float> bad = {1.0f};
  EXPECT_THROW(t.RestoreRow(4, w, 0.0f), std::out_of_range);
  EXPECT_THROW(t.RestoreRow(0, bad, 0.0f), std::invalid_argument);
}

TEST(EmbeddingTable, SerializeRoundTrip) {
  util::Rng rng(5);
  EmbeddingTable t("emb/shard3", 33, 7);
  t.InitUniform(rng);
  const std::vector<float> grad = {1, 2, 3, 4, 5, 6, 7};
  t.ApplySparseAdagrad(11, grad, 0.1f, 1e-6f);

  util::Writer w;
  t.Serialize(w);
  util::Reader r(w.bytes());
  const EmbeddingTable back = EmbeddingTable::Deserialize(r);
  EXPECT_EQ(back, t);
  EXPECT_EQ(back.name(), "emb/shard3");
  EXPECT_EQ(back.AdagradState(11), t.AdagradState(11));
}

// Property: after K random updates, exactly the touched rows differ from a
// pristine copy and all others are bit-identical.
class EmbeddingUpdateSparsityTest : public ::testing::TestWithParam<int> {};

TEST_P(EmbeddingUpdateSparsityTest, OnlyTouchedRowsChange) {
  const int updates = GetParam();
  util::Rng rng(updates * 7 + 1);
  EmbeddingTable t("emb", 64, 4);
  t.InitUniform(rng);
  const EmbeddingTable pristine = t;

  std::set<std::size_t> touched;
  for (int i = 0; i < updates; ++i) {
    const auto row = rng.NextBounded(64);
    std::vector<float> grad(4);
    for (auto& g : grad) g = rng.NextFloat(-1, 1);
    t.ApplySparseAdagrad(row, grad, 0.05f, 1e-6f);
    touched.insert(row);
  }
  for (std::size_t r = 0; r < 64; ++r) {
    const bool same_weights =
        std::equal(t.Row(r).begin(), t.Row(r).end(), pristine.Row(r).begin());
    const bool same_state = t.AdagradState(r) == pristine.AdagradState(r);
    if (touched.contains(r)) {
      EXPECT_FALSE(same_state) << "row " << r;
    } else {
      EXPECT_TRUE(same_weights && same_state) << "row " << r;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Updates, EmbeddingUpdateSparsityTest,
                         ::testing::Values(1, 5, 20, 64, 200));

}  // namespace
}  // namespace cnr::tensor
