#include "tensor/sharding.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace cnr::tensor {
namespace {

TEST(ShardedEmbedding, EvenSplit) {
  ShardedEmbedding e("emb", 100, 4, 4);
  EXPECT_EQ(e.num_shards(), 4u);
  for (std::size_t s = 0; s < 4; ++s) EXPECT_EQ(e.Shard(s).num_rows(), 25u);
  EXPECT_EQ(e.ParameterCount(), 400u);
}

TEST(ShardedEmbedding, UnevenSplitCoversAllRows) {
  ShardedEmbedding e("emb", 10, 2, 3);  // 4+4+2
  std::size_t total = 0;
  for (std::size_t s = 0; s < e.num_shards(); ++s) total += e.Shard(s).num_rows();
  EXPECT_EQ(total, 10u);
}

TEST(ShardedEmbedding, FewerRowsThanShards) {
  ShardedEmbedding e("emb", 2, 4, 8);
  std::size_t total = 0;
  for (std::size_t s = 0; s < e.num_shards(); ++s) total += e.Shard(s).num_rows();
  EXPECT_EQ(total, 2u);
  EXPECT_LE(e.num_shards(), 2u);
}

TEST(ShardedEmbedding, ZeroShardsThrows) {
  EXPECT_THROW(ShardedEmbedding("emb", 10, 2, 0), std::invalid_argument);
}

TEST(ShardedEmbedding, LocateRoundTrips) {
  ShardedEmbedding e("emb", 103, 2, 4);
  for (std::size_t row = 0; row < 103; ++row) {
    const auto loc = e.Locate(row);
    EXPECT_LT(loc.shard, e.num_shards());
    EXPECT_LT(loc.local_row, e.Shard(loc.shard).num_rows());
    EXPECT_EQ(e.LogicalRow(loc.shard, loc.local_row), row);
  }
}

TEST(ShardedEmbedding, LocateOutOfRangeThrows) {
  ShardedEmbedding e("emb", 10, 2, 2);
  EXPECT_THROW(e.Locate(10), std::out_of_range);
}

TEST(ShardedEmbedding, UpdateRoutesToOwningShard) {
  util::Rng rng(1);
  ShardedEmbedding e("emb", 40, 2, 4);
  e.InitUniform(rng);

  // Track per-shard updates.
  std::vector<std::vector<std::size_t>> tracked(e.num_shards());
  for (std::size_t s = 0; s < e.num_shards(); ++s) {
    e.Shard(s).SetTracker([&tracked, s](std::size_t r) { tracked[s].push_back(r); });
  }

  const std::vector<float> grad = {1.0f, -1.0f};
  e.ApplySparseAdagrad(0, grad, 0.1f, 1e-6f);   // shard 0, local 0
  e.ApplySparseAdagrad(39, grad, 0.1f, 1e-6f);  // last shard, last local

  EXPECT_EQ(tracked[0], (std::vector<std::size_t>{0}));
  const auto last = e.Locate(39);
  EXPECT_EQ(tracked[last.shard], (std::vector<std::size_t>{last.local_row}));
}

TEST(ShardedEmbedding, LookupSeesUpdates) {
  util::Rng rng(2);
  ShardedEmbedding e("emb", 16, 4, 4);
  e.InitUniform(rng);
  const auto before = std::vector<float>(e.LookupRow(9).begin(), e.LookupRow(9).end());
  const std::vector<float> grad = {1, 1, 1, 1};
  e.ApplySparseAdagrad(9, grad, 0.5f, 1e-6f);
  const auto after = e.LookupRow(9);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_LT(after[i], before[i]);
}

TEST(ShardedEmbedding, ShardNamesAreDistinct) {
  ShardedEmbedding e("tbl", 20, 2, 4);
  std::set<std::string> names;
  for (std::size_t s = 0; s < e.num_shards(); ++s) names.insert(e.Shard(s).name());
  EXPECT_EQ(names.size(), e.num_shards());
}

// Property: logical view through shards equals a monolithic table given the
// same update sequence.
class ShardingEquivalenceTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ShardingEquivalenceTest, MatchesMonolithicTable) {
  const std::size_t num_shards = GetParam();
  constexpr std::size_t kRows = 57, kDim = 3;
  util::Rng rng(num_shards * 13 + 5);

  ShardedEmbedding sharded("emb", kRows, kDim, num_shards);
  EmbeddingTable mono("mono", kRows, kDim);
  // Identical initial contents.
  for (std::size_t r = 0; r < kRows; ++r) {
    std::vector<float> row(kDim);
    for (auto& v : row) v = rng.NextFloat(-0.1f, 0.1f);
    mono.RestoreRow(r, row, 0.0f);
    const auto loc = sharded.Locate(r);
    sharded.Shard(loc.shard).RestoreRow(loc.local_row, row, 0.0f);
  }

  for (int i = 0; i < 300; ++i) {
    const auto row = rng.NextBounded(kRows);
    std::vector<float> grad(kDim);
    for (auto& g : grad) g = rng.NextFloat(-1, 1);
    mono.ApplySparseAdagrad(row, grad, 0.05f, 1e-6f);
    sharded.ApplySparseAdagrad(row, grad, 0.05f, 1e-6f);
  }

  for (std::size_t r = 0; r < kRows; ++r) {
    const auto got = sharded.LookupRow(r);
    const auto want = mono.Row(r);
    for (std::size_t d = 0; d < kDim; ++d) EXPECT_EQ(got[d], want[d]) << "row " << r;
    const auto loc = sharded.Locate(r);
    EXPECT_EQ(sharded.Shard(loc.shard).AdagradState(loc.local_row), mono.AdagradState(r));
  }
}

INSTANTIATE_TEST_SUITE_P(Shards, ShardingEquivalenceTest, ::testing::Values(1, 2, 3, 8, 57));

}  // namespace
}  // namespace cnr::tensor
