#include "tensor/sharding.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace cnr::tensor {
namespace {

TEST(ShardedEmbedding, EvenSplit) {
  ShardedEmbedding e("emb", 100, 4, 4);
  EXPECT_EQ(e.num_shards(), 4u);
  for (std::size_t s = 0; s < 4; ++s) EXPECT_EQ(e.Shard(s).num_rows(), 25u);
  EXPECT_EQ(e.ParameterCount(), 400u);
}

TEST(ShardedEmbedding, UnevenSplitCoversAllRows) {
  ShardedEmbedding e("emb", 10, 2, 3);  // 4+4+2
  std::size_t total = 0;
  for (std::size_t s = 0; s < e.num_shards(); ++s) total += e.Shard(s).num_rows();
  EXPECT_EQ(total, 10u);
}

TEST(ShardedEmbedding, FewerRowsThanShards) {
  ShardedEmbedding e("emb", 2, 4, 8);
  std::size_t total = 0;
  for (std::size_t s = 0; s < e.num_shards(); ++s) total += e.Shard(s).num_rows();
  EXPECT_EQ(total, 2u);
  EXPECT_LE(e.num_shards(), 2u);
}

TEST(ShardedEmbedding, RowsOnShardBoundariesRouteToTheRightShard) {
  // 100 rows over 4 shards: shard s owns [25s, 25s+25). The first and last
  // row of every shard — the off-by-one hot spots — must locate, round-trip,
  // and route updates to the owning shard's tracker.
  ShardedEmbedding e("emb", 100, 2, 4);
  for (std::size_t s = 0; s < 4; ++s) {
    const std::size_t first = 25 * s, last = 25 * s + 24;
    EXPECT_EQ(e.Locate(first).shard, s);
    EXPECT_EQ(e.Locate(first).local_row, 0u);
    EXPECT_EQ(e.Locate(last).shard, s);
    EXPECT_EQ(e.Locate(last).local_row, 24u);
    EXPECT_EQ(e.LogicalRow(s, 0), first);
    EXPECT_EQ(e.LogicalRow(s, 24), last);
  }

  util::Rng rng(7);
  e.InitUniform(rng);
  std::vector<std::vector<std::size_t>> tracked(e.num_shards());
  for (std::size_t s = 0; s < e.num_shards(); ++s) {
    e.Shard(s).SetTracker([&tracked, s](std::size_t r) { tracked[s].push_back(r); });
  }
  const std::vector<float> grad = {1.0f, -1.0f};
  e.ApplySparseAdagrad(24, grad, 0.1f, 1e-6f);  // last row of shard 0
  e.ApplySparseAdagrad(25, grad, 0.1f, 1e-6f);  // first row of shard 1
  EXPECT_EQ(tracked[0], (std::vector<std::size_t>{24}));
  EXPECT_EQ(tracked[1], (std::vector<std::size_t>{0}));

  // Uneven split (10 = 4+4+2): the final short shard's boundary still maps.
  ShardedEmbedding u("emb", 10, 2, 3);
  EXPECT_EQ(u.Locate(7).shard, 1u);
  EXPECT_EQ(u.Locate(8).shard, 2u);
  EXPECT_EQ(u.Locate(8).local_row, 0u);
  EXPECT_EQ(u.Shard(2).num_rows(), 2u);
}

TEST(ShardedEmbedding, NoShardIsEverEmpty) {
  // The constructor clamps the shard count rather than materialize empty
  // shards (a shard with zero rows would publish zero-row chunks and an
  // empty dirty bitmap — the checkpoint planes special-case absent shards
  // instead, see core/sharded_checkpoint.h).
  for (const auto [rows, requested] : {std::pair<std::size_t, std::size_t>{3, 4},
                                       {9, 8},
                                       {1, 16},
                                       {5, 5}}) {
    ShardedEmbedding e("emb", rows, 2, requested);
    EXPECT_LE(e.num_shards(), rows) << rows << "/" << requested;
    std::size_t total = 0;
    for (std::size_t s = 0; s < e.num_shards(); ++s) {
      EXPECT_GT(e.Shard(s).num_rows(), 0u) << "empty shard " << s;
      total += e.Shard(s).num_rows();
    }
    EXPECT_EQ(total, rows);
  }
}

TEST(ShardedEmbedding, SingleShardIsTheIdentityLayout) {
  // num_shards=1 must degenerate to the unsharded table: one shard holding
  // every row, Locate the identity map — so a 1-shard job's checkpoints are
  // laid out exactly like an unsharded job's.
  constexpr std::size_t kRows = 37, kDim = 3;
  ShardedEmbedding e("emb", kRows, kDim, 1);
  ASSERT_EQ(e.num_shards(), 1u);
  EXPECT_EQ(e.Shard(0).num_rows(), kRows);
  for (std::size_t r = 0; r < kRows; ++r) {
    EXPECT_EQ(e.Locate(r).shard, 0u);
    EXPECT_EQ(e.Locate(r).local_row, r);
    EXPECT_EQ(e.LogicalRow(0, r), r);
  }

  // And behaves bit-identically to a monolithic EmbeddingTable.
  util::Rng rng(11);
  EmbeddingTable mono("mono", kRows, kDim);
  for (std::size_t r = 0; r < kRows; ++r) {
    std::vector<float> row(kDim);
    for (auto& v : row) v = rng.NextFloat(-0.1f, 0.1f);
    mono.RestoreRow(r, row, 0.0f);
    e.Shard(0).RestoreRow(r, row, 0.0f);
  }
  for (int i = 0; i < 100; ++i) {
    const auto row = rng.NextBounded(kRows);
    std::vector<float> grad(kDim);
    for (auto& g : grad) g = rng.NextFloat(-1, 1);
    mono.ApplySparseAdagrad(row, grad, 0.05f, 1e-6f);
    e.ApplySparseAdagrad(row, grad, 0.05f, 1e-6f);
  }
  for (std::size_t r = 0; r < kRows; ++r) {
    const auto got = e.LookupRow(r);
    const auto want = mono.Row(r);
    for (std::size_t d = 0; d < kDim; ++d) EXPECT_EQ(got[d], want[d]) << "row " << r;
  }
}

TEST(ShardedEmbedding, ZeroShardsThrows) {
  EXPECT_THROW(ShardedEmbedding("emb", 10, 2, 0), std::invalid_argument);
}

TEST(ShardedEmbedding, LocateRoundTrips) {
  ShardedEmbedding e("emb", 103, 2, 4);
  for (std::size_t row = 0; row < 103; ++row) {
    const auto loc = e.Locate(row);
    EXPECT_LT(loc.shard, e.num_shards());
    EXPECT_LT(loc.local_row, e.Shard(loc.shard).num_rows());
    EXPECT_EQ(e.LogicalRow(loc.shard, loc.local_row), row);
  }
}

TEST(ShardedEmbedding, LocateOutOfRangeThrows) {
  ShardedEmbedding e("emb", 10, 2, 2);
  EXPECT_THROW(e.Locate(10), std::out_of_range);
}

TEST(ShardedEmbedding, UpdateRoutesToOwningShard) {
  util::Rng rng(1);
  ShardedEmbedding e("emb", 40, 2, 4);
  e.InitUniform(rng);

  // Track per-shard updates.
  std::vector<std::vector<std::size_t>> tracked(e.num_shards());
  for (std::size_t s = 0; s < e.num_shards(); ++s) {
    e.Shard(s).SetTracker([&tracked, s](std::size_t r) { tracked[s].push_back(r); });
  }

  const std::vector<float> grad = {1.0f, -1.0f};
  e.ApplySparseAdagrad(0, grad, 0.1f, 1e-6f);   // shard 0, local 0
  e.ApplySparseAdagrad(39, grad, 0.1f, 1e-6f);  // last shard, last local

  EXPECT_EQ(tracked[0], (std::vector<std::size_t>{0}));
  const auto last = e.Locate(39);
  EXPECT_EQ(tracked[last.shard], (std::vector<std::size_t>{last.local_row}));
}

TEST(ShardedEmbedding, LookupSeesUpdates) {
  util::Rng rng(2);
  ShardedEmbedding e("emb", 16, 4, 4);
  e.InitUniform(rng);
  const auto before = std::vector<float>(e.LookupRow(9).begin(), e.LookupRow(9).end());
  const std::vector<float> grad = {1, 1, 1, 1};
  e.ApplySparseAdagrad(9, grad, 0.5f, 1e-6f);
  const auto after = e.LookupRow(9);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_LT(after[i], before[i]);
}

TEST(ShardedEmbedding, ShardNamesAreDistinct) {
  ShardedEmbedding e("tbl", 20, 2, 4);
  std::set<std::string> names;
  for (std::size_t s = 0; s < e.num_shards(); ++s) names.insert(e.Shard(s).name());
  EXPECT_EQ(names.size(), e.num_shards());
}

// Property: logical view through shards equals a monolithic table given the
// same update sequence.
class ShardingEquivalenceTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ShardingEquivalenceTest, MatchesMonolithicTable) {
  const std::size_t num_shards = GetParam();
  constexpr std::size_t kRows = 57, kDim = 3;
  util::Rng rng(num_shards * 13 + 5);

  ShardedEmbedding sharded("emb", kRows, kDim, num_shards);
  EmbeddingTable mono("mono", kRows, kDim);
  // Identical initial contents.
  for (std::size_t r = 0; r < kRows; ++r) {
    std::vector<float> row(kDim);
    for (auto& v : row) v = rng.NextFloat(-0.1f, 0.1f);
    mono.RestoreRow(r, row, 0.0f);
    const auto loc = sharded.Locate(r);
    sharded.Shard(loc.shard).RestoreRow(loc.local_row, row, 0.0f);
  }

  for (int i = 0; i < 300; ++i) {
    const auto row = rng.NextBounded(kRows);
    std::vector<float> grad(kDim);
    for (auto& g : grad) g = rng.NextFloat(-1, 1);
    mono.ApplySparseAdagrad(row, grad, 0.05f, 1e-6f);
    sharded.ApplySparseAdagrad(row, grad, 0.05f, 1e-6f);
  }

  for (std::size_t r = 0; r < kRows; ++r) {
    const auto got = sharded.LookupRow(r);
    const auto want = mono.Row(r);
    for (std::size_t d = 0; d < kDim; ++d) EXPECT_EQ(got[d], want[d]) << "row " << r;
    const auto loc = sharded.Locate(r);
    EXPECT_EQ(sharded.Shard(loc.shard).AdagradState(loc.local_row), mono.AdagradState(r));
  }
}

INSTANTIATE_TEST_SUITE_P(Shards, ShardingEquivalenceTest, ::testing::Values(1, 2, 3, 8, 57));

}  // namespace
}  // namespace cnr::tensor
