#include "util/bitvector.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace cnr::util {
namespace {

TEST(BitVector, StartsCleared) {
  BitVector bv(100);
  EXPECT_EQ(bv.size(), 100u);
  EXPECT_EQ(bv.Count(), 0u);
  EXPECT_TRUE(bv.None());
  for (std::size_t i = 0; i < 100; ++i) EXPECT_FALSE(bv.Test(i));
}

TEST(BitVector, SetAndTest) {
  BitVector bv(130);
  bv.Set(0);
  bv.Set(63);
  bv.Set(64);
  bv.Set(129);
  EXPECT_TRUE(bv.Test(0));
  EXPECT_TRUE(bv.Test(63));
  EXPECT_TRUE(bv.Test(64));
  EXPECT_TRUE(bv.Test(129));
  EXPECT_FALSE(bv.Test(1));
  EXPECT_FALSE(bv.Test(128));
  EXPECT_EQ(bv.Count(), 4u);
}

TEST(BitVector, ClearAndAssign) {
  BitVector bv(10);
  bv.Set(3);
  bv.Clear(3);
  EXPECT_FALSE(bv.Test(3));
  bv.Assign(5, true);
  EXPECT_TRUE(bv.Test(5));
  bv.Assign(5, false);
  EXPECT_FALSE(bv.Test(5));
}

TEST(BitVector, OutOfRangeThrows) {
  BitVector bv(64);
  EXPECT_THROW(bv.Set(64), std::out_of_range);
  EXPECT_THROW(bv.Test(64), std::out_of_range);
  EXPECT_THROW(bv.Clear(100), std::out_of_range);
}

TEST(BitVector, SetAllRespectsSize) {
  BitVector bv(70);  // partial last word
  bv.SetAll();
  EXPECT_EQ(bv.Count(), 70u);
  bv.ClearAll();
  EXPECT_EQ(bv.Count(), 0u);
}

TEST(BitVector, Density) {
  BitVector bv(200);
  for (std::size_t i = 0; i < 50; ++i) bv.Set(i);
  EXPECT_DOUBLE_EQ(bv.Density(), 0.25);
  EXPECT_DOUBLE_EQ(BitVector().Density(), 0.0);
}

TEST(BitVector, UnionIntersectionSubtract) {
  BitVector a(128), b(128);
  a.Set(1);
  a.Set(70);
  b.Set(70);
  b.Set(127);

  BitVector u = a;
  u |= b;
  EXPECT_EQ(u.Count(), 3u);
  EXPECT_TRUE(u.Test(1) && u.Test(70) && u.Test(127));

  BitVector n = a;
  n &= b;
  EXPECT_EQ(n.Count(), 1u);
  EXPECT_TRUE(n.Test(70));

  BitVector d = a;
  d.Subtract(b);
  EXPECT_EQ(d.Count(), 1u);
  EXPECT_TRUE(d.Test(1));
}

TEST(BitVector, SizeMismatchThrows) {
  BitVector a(10), b(11);
  EXPECT_THROW(a |= b, std::invalid_argument);
  EXPECT_THROW(a &= b, std::invalid_argument);
  EXPECT_THROW(a.Subtract(b), std::invalid_argument);
}

TEST(BitVector, FindNext) {
  BitVector bv(200);
  bv.Set(5);
  bv.Set(64);
  bv.Set(199);
  EXPECT_EQ(bv.FindNext(0), 5u);
  EXPECT_EQ(bv.FindNext(5), 5u);
  EXPECT_EQ(bv.FindNext(6), 64u);
  EXPECT_EQ(bv.FindNext(65), 199u);
  EXPECT_EQ(bv.FindNext(200), BitVector::npos);
  BitVector empty(64);
  EXPECT_EQ(empty.FindNext(0), BitVector::npos);
}

TEST(BitVector, ForEachSetAscending) {
  BitVector bv(300);
  const std::vector<std::size_t> expected = {0, 63, 64, 65, 128, 299};
  for (const auto i : expected) bv.Set(i);
  std::vector<std::size_t> seen;
  bv.ForEachSet([&](std::size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, expected);
}

TEST(BitVector, ToIndicesMatchesForEach) {
  Rng rng(7);
  BitVector bv(1000);
  for (int i = 0; i < 100; ++i) bv.Set(rng.NextBounded(1000));
  const auto idx = bv.ToIndices();
  EXPECT_EQ(idx.size(), bv.Count());
  for (const auto i : idx) EXPECT_TRUE(bv.Test(i));
  EXPECT_TRUE(std::is_sorted(idx.begin(), idx.end()));
}

TEST(BitVector, Resize) {
  BitVector bv(10);
  bv.Set(9);
  bv.Resize(100);
  EXPECT_TRUE(bv.Test(9));
  EXPECT_EQ(bv.Count(), 1u);
  bv.Set(99);
  bv.Resize(50);
  EXPECT_EQ(bv.Count(), 1u);  // bit 99 trimmed
}

TEST(BitVector, SerializeRoundTrip) {
  Rng rng(11);
  BitVector bv(777);
  for (int i = 0; i < 200; ++i) bv.Set(rng.NextBounded(777));
  Writer w;
  bv.Serialize(w);
  EXPECT_EQ(w.size(), bv.ByteSize());
  Reader r(w.bytes());
  const BitVector back = BitVector::Deserialize(r);
  EXPECT_EQ(back, bv);
  EXPECT_TRUE(r.AtEnd());
}

TEST(BitVector, EqualityIgnoresNothing) {
  BitVector a(65), b(65);
  EXPECT_EQ(a, b);
  a.Set(64);
  EXPECT_FALSE(a == b);
  b.Set(64);
  EXPECT_EQ(a, b);
}

// Property sweep: Count() equals a reference scalar count across sizes and
// densities, including word-boundary sizes.
class BitVectorPropertyTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BitVectorPropertyTest, CountMatchesReference) {
  const std::size_t size = GetParam();
  Rng rng(size * 2654435761u + 1);
  BitVector bv(size);
  std::vector<bool> ref(size, false);
  const std::size_t flips = size / 2 + 1;
  for (std::size_t i = 0; i < flips; ++i) {
    const auto pos = rng.NextBounded(size);
    if (rng.NextBool(0.3)) {
      bv.Clear(pos);
      ref[pos] = false;
    } else {
      bv.Set(pos);
      ref[pos] = true;
    }
  }
  std::size_t expected = 0;
  for (const bool b : ref) expected += b ? 1 : 0;
  EXPECT_EQ(bv.Count(), expected);
  // ForEachSet visits exactly the reference-set bits.
  std::size_t visited = 0;
  bv.ForEachSet([&](std::size_t i) {
    EXPECT_TRUE(ref[i]);
    ++visited;
  });
  EXPECT_EQ(visited, expected);
}

TEST_P(BitVectorPropertyTest, SerializePreservesAllBits) {
  const std::size_t size = GetParam();
  Rng rng(size + 99);
  BitVector bv(size);
  for (std::size_t i = 0; i < size; ++i) {
    if (rng.NextBool(0.37)) bv.Set(i);
  }
  Writer w;
  bv.Serialize(w);
  Reader r(w.bytes());
  EXPECT_EQ(BitVector::Deserialize(r), bv);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitVectorPropertyTest,
                         ::testing::Values(1, 2, 63, 64, 65, 127, 128, 129, 1000, 4096));

}  // namespace
}  // namespace cnr::util
