#include "util/crc32.h"

#include <gtest/gtest.h>

#include <string_view>

#include "util/rng.h"

namespace cnr::util {
namespace {

std::uint32_t CrcOf(std::string_view s) { return Crc32c(s.data(), s.size()); }

TEST(Crc32c, KnownVectors) {
  // Standard CRC-32C test vectors.
  EXPECT_EQ(CrcOf(""), 0x00000000u);
  EXPECT_EQ(CrcOf("123456789"), 0xE3069283u);
  EXPECT_EQ(CrcOf("a"), 0xC1D04330u);
  // 32 bytes of zeros (RFC 3720 appendix B.4).
  const std::vector<std::uint8_t> zeros(32, 0);
  EXPECT_EQ(Crc32c(zeros), 0x8A9136AAu);
  // 32 bytes of 0xFF.
  const std::vector<std::uint8_t> ones(32, 0xFF);
  EXPECT_EQ(Crc32c(ones), 0x62A8AB43u);
}

TEST(Crc32c, SensitiveToEveryBit) {
  Rng rng(1);
  std::vector<std::uint8_t> data(64);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.NextBounded(256));
  const std::uint32_t base = Crc32c(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      auto corrupted = data;
      corrupted[i] ^= static_cast<std::uint8_t>(1 << bit);
      EXPECT_NE(Crc32c(corrupted), base) << "byte " << i << " bit " << bit;
    }
  }
}

TEST(Crc32c, IncrementalMatchesOneShot) {
  Rng rng(2);
  std::vector<std::uint8_t> data(1000);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.NextBounded(256));
  const std::uint32_t whole = Crc32c(data);
  const std::uint32_t first = Crc32c(std::span(data).subspan(0, 400));
  const std::uint32_t chained = Crc32c(std::span(data).subspan(400), first);
  EXPECT_EQ(chained, whole);
}

TEST(Crc32c, OrderMatters) {
  EXPECT_NE(CrcOf("ab"), CrcOf("ba"));
}

TEST(Crc32c, ScalarPathMatchesKnownVectors) {
  // The software slice-by-8 path stands alone as the reference.
  const char nine[] = "123456789";
  EXPECT_EQ(Crc32cScalar({reinterpret_cast<const std::uint8_t*>(nine), 9}), 0xE3069283u);
  const std::vector<std::uint8_t> zeros(32, 0);
  EXPECT_EQ(Crc32cScalar(zeros), 0x8A9136AAu);
}

TEST(Crc32c, DispatchedPathMatchesScalarPath) {
  // Whatever Crc32c dispatched to (sse4.2 / armv8 / slice8), it is the same
  // function as the software reference — on every length, including the
  // sub-word tails, and with chained seeds.
  Rng rng(3);
  std::vector<std::uint8_t> data(300);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.NextBounded(256));
  for (std::size_t len = 0; len <= 100; ++len) {
    const std::span<const std::uint8_t> s(data.data(), len);
    EXPECT_EQ(Crc32c(s), Crc32cScalar(s)) << "len=" << len << " impl=" << Crc32cImplName();
    EXPECT_EQ(Crc32c(s, 0x1234ABCDu), Crc32cScalar(s, 0x1234ABCDu)) << "len=" << len;
  }
  EXPECT_EQ(Crc32c(data), Crc32cScalar(data));
}

}  // namespace
}  // namespace cnr::util
