#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace cnr::util {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBoundedInRange) {
  Rng rng(5);
  for (const std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.NextBounded(bound), bound);
  }
}

TEST(Rng, NextBoundedZeroThrows) {
  Rng rng(5);
  EXPECT_THROW(rng.NextBounded(0), std::invalid_argument);
}

TEST(Rng, NextBoundedRoughlyUniform) {
  Rng rng(17);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextBounded(kBuckets)];
  for (const int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, GaussianMoments) {
  Rng rng(31);
  double sum = 0.0, sq = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.03);
  EXPECT_NEAR(sq / kN, 1.0, 0.05);
}

TEST(Rng, ForkIndependent) {
  Rng parent(77);
  Rng child = parent.Fork();
  // Child continues differently from parent.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.Next() == child.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Zipf, SamplesInRange) {
  Rng rng(3);
  ZipfSampler zipf(1000, 1.1);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_LT(zipf.Sample(rng), 1000u);
  }
}

TEST(Zipf, SkewFavorsSmallIds) {
  Rng rng(13);
  ZipfSampler zipf(100000, 1.2);
  constexpr int kDraws = 50000;
  int head = 0;  // draws landing in the first 1% of ids
  for (int i = 0; i < kDraws; ++i) {
    if (zipf.Sample(rng) < 1000) ++head;
  }
  // With s=1.2 the head carries well over half the mass.
  EXPECT_GT(static_cast<double>(head) / kDraws, 0.5);
}

TEST(Zipf, HigherSkewConcentratesMore) {
  Rng rng1(21), rng2(21);
  ZipfSampler mild(10000, 0.8), heavy(10000, 1.5);
  constexpr int kDraws = 30000;
  int mild_head = 0, heavy_head = 0;
  for (int i = 0; i < kDraws; ++i) {
    if (mild.Sample(rng1) < 100) ++mild_head;
    if (heavy.Sample(rng2) < 100) ++heavy_head;
  }
  EXPECT_GT(heavy_head, mild_head);
}

TEST(Zipf, SingleElementAlwaysZero) {
  Rng rng(1);
  ZipfSampler zipf(1, 1.1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.Sample(rng), 0u);
}

TEST(Zipf, ExponentOneHandled) {
  Rng rng(2);
  ZipfSampler zipf(1000, 1.0);  // pole nudged internally
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.Sample(rng), 1000u);
}

TEST(SampleWithoutReplacement, DistinctAndInRange) {
  Rng rng(8);
  const auto picks = SampleWithoutReplacement(rng, 100, 30);
  EXPECT_EQ(picks.size(), 30u);
  std::set<std::uint64_t> unique(picks.begin(), picks.end());
  EXPECT_EQ(unique.size(), 30u);
  for (const auto p : picks) EXPECT_LT(p, 100u);
}

TEST(SampleWithoutReplacement, FullRange) {
  Rng rng(8);
  const auto picks = SampleWithoutReplacement(rng, 10, 10);
  std::set<std::uint64_t> unique(picks.begin(), picks.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(SampleWithoutReplacement, KGreaterThanNThrows) {
  Rng rng(8);
  EXPECT_THROW(SampleWithoutReplacement(rng, 5, 6), std::invalid_argument);
}

// Parameterized distribution check: every element appears with roughly equal
// probability across repeated draws.
class SwrUniformityTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SwrUniformityTest, MarginalsUniform) {
  const std::uint64_t k = GetParam();
  constexpr std::uint64_t kN = 20;
  constexpr int kTrials = 8000;
  Rng rng(k * 31 + 5);
  std::vector<int> counts(kN, 0);
  for (int t = 0; t < kTrials; ++t) {
    for (const auto p : SampleWithoutReplacement(rng, kN, k)) ++counts[p];
  }
  const double expected = static_cast<double>(kTrials) * k / kN;
  for (const int c : counts) EXPECT_NEAR(c, expected, expected * 0.15);
}

INSTANTIATE_TEST_SUITE_P(Ks, SwrUniformityTest, ::testing::Values(1, 5, 10, 19));

}  // namespace
}  // namespace cnr::util
