#include "util/serialize.h"

#include <gtest/gtest.h>

#include <cstring>

namespace cnr::util {
namespace {

TEST(Serialize, PrimitiveRoundTrip) {
  Writer w;
  w.Put<std::uint8_t>(0xAB);
  w.Put<std::int32_t>(-12345);
  w.Put<std::uint64_t>(0xDEADBEEFCAFEBABEull);
  w.Put<float>(3.25f);
  w.Put<double>(-2.5);

  Reader r(w.bytes());
  EXPECT_EQ(r.Get<std::uint8_t>(), 0xAB);
  EXPECT_EQ(r.Get<std::int32_t>(), -12345);
  EXPECT_EQ(r.Get<std::uint64_t>(), 0xDEADBEEFCAFEBABEull);
  EXPECT_EQ(r.Get<float>(), 3.25f);
  EXPECT_EQ(r.Get<double>(), -2.5);
  EXPECT_TRUE(r.AtEnd());
}

TEST(Serialize, StringRoundTrip) {
  Writer w;
  w.PutString("");
  w.PutString("hello world");
  std::string with_nul("a\0b", 3);
  w.PutString(with_nul);

  Reader r(w.bytes());
  EXPECT_EQ(r.GetString(), "");
  EXPECT_EQ(r.GetString(), "hello world");
  EXPECT_EQ(r.GetString(), with_nul);
}

TEST(Serialize, VectorRoundTrip) {
  Writer w;
  const std::vector<float> floats = {1.0f, -2.5f, 3.75f};
  const std::vector<std::uint32_t> empty;
  w.PutVector(floats);
  w.PutVector(empty);

  Reader r(w.bytes());
  EXPECT_EQ(r.GetVector<float>(), floats);
  EXPECT_TRUE(r.GetVector<std::uint32_t>().empty());
}

TEST(Serialize, VarintRoundTrip) {
  Writer w;
  const std::vector<std::uint64_t> values = {0,    1,    127,        128,
                                             300,  16384, 1ull << 32, ~0ull};
  for (const auto v : values) w.PutVarint(v);
  Reader r(w.bytes());
  for (const auto v : values) EXPECT_EQ(r.GetVarint(), v);
  EXPECT_TRUE(r.AtEnd());
}

TEST(Serialize, VarintCompactForSmallValues) {
  Writer w;
  w.PutVarint(5);
  EXPECT_EQ(w.size(), 1u);
  w.PutVarint(300);
  EXPECT_EQ(w.size(), 3u);  // 1 + 2
}

TEST(Serialize, UnderrunThrows) {
  Writer w;
  w.Put<std::uint32_t>(7);
  Reader r(w.bytes());
  (void)r.Get<std::uint32_t>();
  EXPECT_THROW(r.Get<std::uint8_t>(), SerializeError);
}

TEST(Serialize, CorruptStringLengthThrows) {
  Writer w;
  w.Put<std::uint32_t>(1000);  // claims 1000 bytes, provides none
  Reader r(w.bytes());
  EXPECT_THROW(r.GetString(), SerializeError);
}

TEST(Serialize, CorruptVectorLengthThrows) {
  Writer w;
  w.Put<std::uint64_t>(~0ull);  // absurd element count
  Reader r(w.bytes());
  EXPECT_THROW(r.GetVector<double>(), SerializeError);
}

TEST(Serialize, BytesAndPosition) {
  Writer w;
  w.PutBytes("abc", 3);
  Reader r(w.bytes());
  EXPECT_EQ(r.remaining(), 3u);
  char buf[3];
  r.GetBytes(buf, 3);
  EXPECT_EQ(std::memcmp(buf, "abc", 3), 0);
  EXPECT_EQ(r.position(), 3u);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Serialize, TakeBytesMoves) {
  Writer w;
  w.Put<std::uint32_t>(1);
  auto bytes = w.TakeBytes();
  EXPECT_EQ(bytes.size(), 4u);
}

TEST(Serialize, ReserveConstructor) {
  Writer w(1024);
  EXPECT_EQ(w.size(), 0u);
  w.Put<std::uint64_t>(1);
  EXPECT_EQ(w.size(), 8u);
}

}  // namespace
}  // namespace cnr::util
