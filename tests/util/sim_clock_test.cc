#include "util/sim_clock.h"

#include <gtest/gtest.h>

namespace cnr::util {
namespace {

TEST(SimClock, StartsAtZero) {
  SimClock clock;
  EXPECT_EQ(clock.now(), 0);
}

TEST(SimClock, AdvanceAccumulates) {
  SimClock clock;
  clock.Advance(5 * kSecond);
  clock.Advance(30 * kMinute);
  EXPECT_EQ(clock.now(), 5 * kSecond + 30 * kMinute);
}

TEST(SimClock, AdvanceToMonotonic) {
  SimClock clock;
  clock.AdvanceTo(kHour);
  EXPECT_EQ(clock.now(), kHour);
  EXPECT_THROW(clock.AdvanceTo(kMinute), std::invalid_argument);
  EXPECT_THROW(clock.Advance(-1), std::invalid_argument);
}

TEST(SimClock, Reset) {
  SimClock clock;
  clock.Advance(kHour);
  clock.Reset();
  EXPECT_EQ(clock.now(), 0);
}

TEST(SimClock, UnitRelations) {
  EXPECT_EQ(kMillisecond, 1000 * kMicrosecond);
  EXPECT_EQ(kSecond, 1000 * kMillisecond);
  EXPECT_EQ(kMinute, 60 * kSecond);
  EXPECT_EQ(kHour, 60 * kMinute);
}

TEST(SimClock, SubscribersWakeOnEveryAdvance) {
  SimClock clock;
  int wakes = 0;
  const auto id = clock.Subscribe([&] { ++wakes; });
  clock.Advance(kMinute);
  clock.AdvanceTo(2 * kMinute);
  clock.Reset();
  EXPECT_EQ(wakes, 3);

  clock.Unsubscribe(id);
  clock.Advance(kSecond);
  EXPECT_EQ(wakes, 3) << "an unsubscribed callback must not fire";

  // Two subscribers both fire; unsubscribing one leaves the other.
  int a = 0, b = 0;
  const auto ida = clock.Subscribe([&] { ++a; });
  const auto idb = clock.Subscribe([&] { ++b; });
  clock.Advance(kSecond);
  clock.Unsubscribe(ida);
  clock.Advance(kSecond);
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
  clock.Unsubscribe(idb);
}

TEST(ThroughputModel, SamplesToTime) {
  ThroughputModel model(500000.0);  // paper's 500K QPS
  EXPECT_EQ(model.TimeForSamples(500000), kSecond);
  EXPECT_EQ(model.TimeForSamples(0), 0);
  // 30 minutes of training at 500K QPS = 900M samples.
  EXPECT_EQ(model.SamplesForTime(30 * kMinute), 900000000ull);
}

TEST(ThroughputModel, RoundTripApprox) {
  ThroughputModel model(12345.0);
  const std::uint64_t samples = 999999;
  const auto t = model.TimeForSamples(samples);
  EXPECT_NEAR(static_cast<double>(model.SamplesForTime(t)), static_cast<double>(samples),
              2.0);
}

TEST(ThroughputModel, RejectsBadQps) {
  EXPECT_THROW(ThroughputModel(0.0), std::invalid_argument);
  EXPECT_THROW(ThroughputModel(-5.0), std::invalid_argument);
}

}  // namespace
}  // namespace cnr::util
