#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace cnr::util {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MatchesDirectComputation) {
  const std::vector<double> xs = {1.0, 2.0, 4.0, 8.0, 16.0};
  RunningStats s;
  for (const double x : xs) s.Add(x);
  double mean = 0;
  for (const double x : xs) mean += x;
  mean /= xs.size();
  double var = 0;
  for (const double x : xs) var += (x - mean) * (x - mean);
  var /= xs.size();
  EXPECT_NEAR(s.mean(), mean, 1e-12);
  EXPECT_NEAR(s.variance(), var, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(var), 1e-12);
  EXPECT_EQ(s.min(), 1.0);
  EXPECT_EQ(s.max(), 16.0);
  EXPECT_NEAR(s.sum(), 31.0, 1e-12);
}

TEST(RunningStats, MergeEqualsSingleStream) {
  Rng rng(4);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextGaussian() * 3 + 1;
    all.Add(x);
    (i % 2 == 0 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.Add(5.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.Merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_EQ(b.mean(), 5.0);
}

TEST(QuantileSketch, ExactQuantiles) {
  QuantileSketch q;
  for (int i = 1; i <= 100; ++i) q.Add(i);
  EXPECT_NEAR(q.Quantile(0.0), 1.0, 1e-12);
  EXPECT_NEAR(q.Quantile(1.0), 100.0, 1e-12);
  EXPECT_NEAR(q.Quantile(0.5), 50.5, 1e-12);
  EXPECT_NEAR(q.Quantile(0.9), 90.1, 1e-9);
}

TEST(QuantileSketch, CdfMatchesRank) {
  QuantileSketch q;
  for (int i = 1; i <= 10; ++i) q.Add(i);
  EXPECT_DOUBLE_EQ(q.Cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(q.Cdf(5.0), 0.5);
  EXPECT_DOUBLE_EQ(q.Cdf(10.0), 1.0);
  EXPECT_DOUBLE_EQ(q.Cdf(100.0), 1.0);
}

TEST(QuantileSketch, EmptyThrows) {
  QuantileSketch q;
  EXPECT_THROW(q.Quantile(0.5), std::logic_error);
  EXPECT_THROW(q.Cdf(1.0), std::logic_error);
}

TEST(QuantileSketch, BadQuantileThrows) {
  QuantileSketch q;
  q.Add(1.0);
  EXPECT_THROW(q.Quantile(-0.1), std::invalid_argument);
  EXPECT_THROW(q.Quantile(1.1), std::invalid_argument);
}

TEST(QuantileSketch, InterleavedAddAndQuery) {
  QuantileSketch q;
  q.Add(3.0);
  q.Add(1.0);
  EXPECT_DOUBLE_EQ(q.Quantile(0.0), 1.0);
  q.Add(0.0);  // re-sorts lazily
  EXPECT_DOUBLE_EQ(q.Quantile(0.0), 0.0);
}

TEST(Histogram, BucketsAndEdges) {
  Histogram h(0.0, 10.0, 10);
  h.Add(0.0);
  h.Add(9.999);
  h.Add(5.0);
  h.Add(-1.0);   // underflow
  h.Add(10.0);   // overflow (hi is exclusive)
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.BucketCount(0), 1u);
  EXPECT_EQ(h.BucketCount(9), 1u);
  EXPECT_EQ(h.BucketCount(5), 1u);
  EXPECT_DOUBLE_EQ(h.BucketLow(5), 5.0);
}

TEST(Histogram, BadRangeThrows) {
  EXPECT_THROW(Histogram(1.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace cnr::util
