// Unit tests for the annotated synchronization primitives (util/sync.h):
// the wrappers the whole concurrent tree locks through, so their semantics
// (RAII release, condvar wait loops, Thread join-on-destroy/move, FirstError
// first-wins) are pinned here rather than assumed.
#include "util/sync.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <vector>

namespace cnr::util {
namespace {

TEST(Mutex, MutexLockSerializesIncrements) {
  Mutex mu;
  std::int64_t counter = 0;  // guarded by mu (a local cannot carry GUARDED_BY)
  constexpr int kThreads = 4;
  constexpr int kIters = 5000;
  std::vector<Thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& w : workers) w.Join();
  MutexLock lock(mu);
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST(Mutex, TryLockFailsWhileHeldAndSucceedsAfter) {
  Mutex mu;
  mu.Lock();
  bool acquired = false;
  Thread t([&] {
    acquired = mu.TryLock();
    if (acquired) mu.Unlock();
  });
  t.Join();
  EXPECT_FALSE(acquired);
  mu.Unlock();
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(SharedMutex, WriterExcludesReaders) {
  SharedMutex mu;
  std::int64_t value = 0;  // guarded by mu (a local cannot carry GUARDED_BY)
  constexpr int kWriters = 2;
  constexpr int kReaders = 2;
  constexpr int kIters = 2000;
  std::atomic<bool> torn{false};
  std::vector<Thread> workers;
  for (int t = 0; t < kWriters; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        WriterMutexLock lock(mu);
        // Non-atomic two-step mutation: readers between the steps would
        // observe an odd value.
        ++value;
        ++value;
      }
    });
  }
  for (int t = 0; t < kReaders; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        ReaderMutexLock lock(mu);
        if (value % 2 != 0) torn.store(true, std::memory_order_relaxed);
      }
    });
  }
  for (auto& w : workers) w.Join();
  EXPECT_FALSE(torn.load());
  WriterMutexLock lock(mu);
  EXPECT_EQ(value, 2 * kWriters * kIters);
}

TEST(CondVar, WaitLoopObservesNotifiedState) {
  Mutex mu;
  CondVar cv;
  bool ready = false;  // guarded by mu (a local cannot carry GUARDED_BY)
  bool observed = false;
  Thread waiter([&] {
    MutexLock lock(mu);
    while (!ready) cv.Wait(mu);
    observed = ready;
  });
  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.NotifyAll();
  waiter.Join();
  EXPECT_TRUE(observed);
}

TEST(CondVar, WaitForTimesOutWithoutNotify) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(mu);
  EXPECT_FALSE(cv.WaitFor(mu, std::chrono::milliseconds(1)));
}

TEST(Thread, MoveAssignmentJoinsDisplacedThread) {
  std::atomic<int> ran{0};
  Thread a([&] { ran.fetch_add(1); });
  Thread b([&] { ran.fetch_add(1); });
  // Overwriting a joinable Thread must join it first — an un-joined
  // displaced thread would std::terminate the process.
  a = std::move(b);
  EXPECT_GE(ran.load(), 1);  // the displaced thread finished
  a.Join();
  EXPECT_EQ(ran.load(), 2);
  EXPECT_FALSE(a.Joinable());
}

TEST(Thread, DefaultConstructedIsNotJoinable) {
  Thread t;
  EXPECT_FALSE(t.Joinable());
}

TEST(FirstError, FirstRecordedErrorWins) {
  FirstError err;
  EXPECT_FALSE(err.Failed());
  EXPECT_EQ(err.Get(), nullptr);
  err.Set(std::make_exception_ptr(std::runtime_error("first")));
  err.Set(std::make_exception_ptr(std::runtime_error("second")));
  EXPECT_TRUE(err.Failed());
  EXPECT_THROW(
      {
        try {
          err.MaybeRethrow();
        } catch (const std::runtime_error& e) {
          EXPECT_STREQ(e.what(), "first");
          throw;
        }
      },
      std::runtime_error);
}

TEST(FirstError, CaptureFromCatchBlock) {
  FirstError err;
  try {
    throw std::logic_error("boom");
  } catch (...) {
    err.Capture();
  }
  EXPECT_TRUE(err.Failed());
  EXPECT_THROW(err.MaybeRethrow(), std::logic_error);
}

TEST(FirstError, MaybeRethrowIsANoOpWhenClean) {
  FirstError err;
  EXPECT_NO_THROW(err.MaybeRethrow());
}

TEST(FirstError, ConcurrentSettersYieldExactlyOneError) {
  FirstError err;
  constexpr int kThreads = 8;
  std::vector<Thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&err, t] {
      err.Set(std::make_exception_ptr(std::runtime_error(std::to_string(t))));
    });
  }
  for (auto& w : workers) w.Join();
  EXPECT_TRUE(err.Failed());
  // Whichever setter won, the recorded error is stable from here on.
  const std::exception_ptr first = err.Get();
  ASSERT_NE(first, nullptr);
  err.Set(std::make_exception_ptr(std::runtime_error("late")));
  EXPECT_EQ(err.Get(), first);
}

}  // namespace
}  // namespace cnr::util
