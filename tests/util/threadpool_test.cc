#include "util/threadpool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

namespace cnr::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  auto f = pool.Submit([] { return 42; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, AtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  EXPECT_EQ(pool.Submit([] { return 1; }).get(), 1);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(8);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 500; ++i) {
    futures.push_back(pool.Submit([&] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 500);
}

TEST(ThreadPool, ExceptionsPropagateThroughFuture) {
  ThreadPool pool(2);
  auto f = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](std::size_t) { FAIL() << "should not run"; });
}

TEST(ThreadPool, ParallelForFewerItemsThanThreads) {
  ThreadPool pool(8);
  std::atomic<int> n{0};
  pool.ParallelFor(3, [&](std::size_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 3);
}

TEST(ThreadPool, DrainWaitsForQueue) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&] { done.fetch_add(1); });
  }
  pool.Drain();
  EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPool, SubmitReturnsValueTypes) {
  ThreadPool pool(2);
  auto fs = pool.Submit([] { return std::string("hello"); });
  EXPECT_EQ(fs.get(), "hello");
  auto fv = pool.Submit([] { return std::vector<int>{1, 2, 3}; });
  EXPECT_EQ(fv.get().size(), 3u);
}

TEST(ThreadPool, NestedSubmitFromWorker) {
  ThreadPool pool(4);
  auto outer = pool.Submit([&] {
    auto inner = pool.Submit([] { return 7; });
    return inner.get() + 1;
  });
  EXPECT_EQ(outer.get(), 8);
}

}  // namespace
}  // namespace cnr::util
