#!/usr/bin/env python3
"""Repo structural-invariant linter (CI lint step).

Enforces, over the tracked sources in src/, the structural rules that the
thread-safety work (docs/CONCURRENCY.md) made load-bearing. Unlike the Clang
Thread Safety Analysis job — which needs clang — these checks are plain text
scans, so they run everywhere (g++-only containers included) and catch
violations before the annotation build does.

Rules:

  1. sync-primitives: raw standard-library threading types (std::mutex,
     std::shared_mutex, std::condition_variable, std::lock_guard,
     std::unique_lock, std::scoped_lock, std::shared_lock, std::thread, ...)
     appear ONLY in src/util/sync.h. Everyone else goes through the annotated
     util::Mutex / util::CondVar / util::MutexLock / util::Thread wrappers,
     or the analysis cannot see their locking. `std::thread::id` is the one
     allowed escape — it is a value type, not a primitive.
     This check is deliberately run over the RAW text, comments included:
     the acceptance gate is `grep -r "std::mutex" src/ | grep -v util/sync.h`
     being empty, so even a comment naming the raw type is rejected (name the
     wrapper instead).

  2. no-tsa-suppressions: NO_THREAD_SAFETY_ANALYSIS appears only in
     src/util/sync.h (where the macro is defined). The annotation build runs
     -Wthread-safety -Werror with zero suppressions; an escape hatch anywhere
     else silently voids the guarantee.

  3. no-sleeps-in-core: blocking sleeps (std::this_thread::sleep_for /
     sleep_until, usleep, nanosleep) are banned in src/core/** — stage drain
     functions run on shared executor workers, and a sleeping drain stalls
     every plane sharing the pool (executor.h's deadlock-freedom rule).
     Deliberate latency injection lives in the storage decorators
     (latency_store.cc, retrying_store.cc), which run on store-facing paths.
     Comments are stripped first: prose may discuss sleeping.

  4. manifest-version-documented: storage::Manifest::kFormatVersion (parsed
     out of src/storage/manifest.h) must appear as a version literal in
     docs/MANIFEST_FORMAT.md — bumping the wire format without documenting
     it breaks the doc's compatibility contract.

Usage: python3 tools/check_invariants.py [repo_root]
Exit 0 if every invariant holds, 1 otherwise (violations listed on stderr).
"""
import os
import re
import sys

SRC_EXTENSIONS = (".h", ".cc", ".cpp")

# Rule 1: the raw primitives and the files allowed to name them.
SYNC_HEADER = os.path.join("src", "util", "sync.h")
RAW_PRIMITIVES = [
    "std::mutex",
    "std::timed_mutex",
    "std::recursive_mutex",
    "std::recursive_timed_mutex",
    "std::shared_mutex",
    "std::shared_timed_mutex",
    "std::condition_variable",  # also matches condition_variable_any
    "std::lock_guard",
    "std::unique_lock",
    "std::scoped_lock",
    "std::shared_lock",
    "std::thread",
]
# std::thread::id is a plain value type (worker retire/reap bookkeeping uses
# it); std::this_thread is the namespace sleep/yield helpers live in and is
# policed by rule 3, not rule 1.
THREAD_OK = re.compile(r"std::thread::id|std::this_thread")

# Rule 3: sleep calls, and where they are allowed.
SLEEP_PATTERN = re.compile(
    r"std::this_thread::sleep_for|std::this_thread::sleep_until"
    r"|\busleep\s*\(|\bnanosleep\s*\("
)
SLEEP_BAN_PREFIX = os.path.join("src", "core") + os.sep
SLEEP_ALLOWED = {
    os.path.join("src", "storage", "latency_store.cc"),
    os.path.join("src", "storage", "retrying_store.cc"),
}

LINE_COMMENT = re.compile(r"//.*")
BLOCK_COMMENT = re.compile(r"/\*.*?\*/", re.DOTALL)
STRING_LIT = re.compile(r'"(?:[^"\\]|\\.)*"')


def strip_comments(text: str) -> str:
    """Remove comments and string literals, preserving line numbers."""

    def blank(m: re.Match) -> str:
        return re.sub(r"[^\n]", " ", m.group(0))

    text = STRING_LIT.sub(blank, text)
    text = BLOCK_COMMENT.sub(blank, text)
    return LINE_COMMENT.sub(blank, text)


def iter_source_files(root: str):
    src = os.path.join(root, "src")
    for dirpath, _, files in os.walk(src):
        for name in sorted(files):
            if name.endswith(SRC_EXTENSIONS):
                full = os.path.join(dirpath, name)
                yield full, os.path.relpath(full, root)


def check_sync_primitives(root, failures):
    for full, rel in iter_source_files(root):
        if rel == SYNC_HEADER:
            continue
        with open(full, encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                for prim in RAW_PRIMITIVES:
                    # Word-boundary on the right so std::thread does not also
                    # fire on std::thread::id (stripped below).
                    for m in re.finditer(re.escape(prim) + r"\b", line):
                        if prim == "std::thread":
                            tail = line[m.start():]
                            if THREAD_OK.match(tail):
                                continue
                        failures.append(
                            f"{rel}:{lineno}: raw `{prim}` outside "
                            f"{SYNC_HEADER} — use the util::sync.h wrappers"
                        )


def check_tsa_suppressions(root, failures):
    for full, rel in iter_source_files(root):
        if rel == SYNC_HEADER:
            continue
        with open(full, encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                if "NO_THREAD_SAFETY_ANALYSIS" in line:
                    failures.append(
                        f"{rel}:{lineno}: NO_THREAD_SAFETY_ANALYSIS outside "
                        f"{SYNC_HEADER} — the annotation build allows zero "
                        "suppressions; annotate instead"
                    )


def check_sleeps(root, failures):
    for full, rel in iter_source_files(root):
        if rel in SLEEP_ALLOWED:
            continue
        with open(full, encoding="utf-8") as f:
            code = strip_comments(f.read())
        for lineno, line in enumerate(code.splitlines(), 1):
            if not SLEEP_PATTERN.search(line):
                continue
            if rel.startswith(SLEEP_BAN_PREFIX):
                failures.append(
                    f"{rel}:{lineno}: blocking sleep in src/core/ — drains "
                    "run on shared executor workers; wait on a CondVar or "
                    "use util::SimClock instead"
                )
            else:
                failures.append(
                    f"{rel}:{lineno}: blocking sleep outside the latency-"
                    "injection allowlist (tools/check_invariants.py "
                    "SLEEP_ALLOWED) — if this is deliberate latency "
                    "injection, extend the allowlist in the same change"
                )


def check_manifest_version(root, failures):
    manifest = os.path.join(root, "src", "storage", "manifest.h")
    doc = os.path.join(root, "docs", "MANIFEST_FORMAT.md")
    try:
        with open(manifest, encoding="utf-8") as f:
            m = re.search(r"kFormatVersion\s*=\s*(\d+)", f.read())
    except OSError:
        failures.append("src/storage/manifest.h: unreadable (kFormatVersion check)")
        return
    if not m:
        failures.append(
            "src/storage/manifest.h: kFormatVersion not found — the "
            "manifest-version-documented invariant cannot be checked"
        )
        return
    version = m.group(1)
    try:
        with open(doc, encoding="utf-8") as f:
            doc_text = f.read()
    except OSError:
        failures.append("docs/MANIFEST_FORMAT.md: missing (kFormatVersion check)")
        return
    # The doc must state the current version as a standalone literal
    # (e.g. "version `3`" or "| 3 |"), not merely as part of a larger number.
    if not re.search(r"(?<![\d.])" + re.escape(version) + r"(?![\d.])", doc_text):
        failures.append(
            f"docs/MANIFEST_FORMAT.md: does not mention manifest format "
            f"version {version} — a kFormatVersion bump must update the "
            "format doc in the same change"
        )


def main() -> int:
    root = sys.argv[1] if len(sys.argv) > 1 else os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))
    )
    failures: list[str] = []
    check_sync_primitives(root, failures)
    check_tsa_suppressions(root, failures)
    check_sleeps(root, failures)
    check_manifest_version(root, failures)
    if failures:
        print(f"check_invariants: {len(failures)} violation(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("check_invariants: all invariants hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
