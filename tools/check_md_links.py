#!/usr/bin/env python3
"""Markdown link checker for the repo's docs (CI docs-lint step).

Verifies that every relative link/image target in tracked *.md files exists,
so docs cannot silently rot as files move. External (http/https/mailto)
links are not fetched — CI must not flake on the network. Fragments
(#anchors) are checked only for file existence, not anchor presence.

Usage: python3 tools/check_md_links.py [repo_root]
Exit code 0 if all links resolve, 1 otherwise (failures listed on stderr).
"""
import os
import re
import sys

# Inline links/images: [text](target) / ![alt](target). Reference-style
# definitions: [label]: target
INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REF_DEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
EXTERNAL = ("http://", "https://", "mailto:")


def strip_code(text: str) -> str:
    """Remove fenced and inline code spans so example snippets aren't linted."""
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    return re.sub(r"`[^`]*`", "", text)


def md_files(root: str):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if not d.startswith(".") and d != "build"
                       and not d.startswith("build-")]
        for name in filenames:
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def main() -> int:
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else ".")
    failures = []
    checked = 0
    for path in sorted(md_files(root)):
        text = strip_code(open(path, encoding="utf-8").read())
        targets = INLINE_LINK.findall(text) + REF_DEF.findall(text)
        for target in targets:
            if target.startswith(EXTERNAL) or target.startswith("#"):
                continue
            checked += 1
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(path), target.split("#", 1)[0]))
            if not os.path.exists(resolved):
                failures.append(f"{os.path.relpath(path, root)}: broken link -> {target}")
    for failure in failures:
        print(failure, file=sys.stderr)
    print(f"checked {checked} relative link(s); {len(failures)} broken")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
