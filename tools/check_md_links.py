#!/usr/bin/env python3
"""Markdown link checker for the repo's docs (CI docs-lint step).

Verifies that every relative link/image target in tracked *.md files exists,
AND that every fragment (#anchor) — same-file or cross-file — names a real
heading in its target, so the cross-linked doc set (README, ARCHITECTURE,
docs/OPERATIONS.md, docs/RECOVERY.md — including the partial-recovery
runbook — docs/MANIFEST_FORMAT.md with the v3 coordinated-cut section,
and docs/TUNING.md) cannot
silently rot as files move or sections are renamed. External
(http/https/mailto) links are not fetched — CI must not flake on the
network.

Anchors are derived from headings the way GitHub does: lowercase, spaces to
dashes, punctuation stripped, duplicate slugs suffixed -1, -2, ...

Usage: python3 tools/check_md_links.py [repo_root]
Exit code 0 if all links resolve, 1 otherwise (failures listed on stderr).
"""
import os
import re
import sys

# Inline links/images: [text](target) / ![alt](target). Reference-style
# definitions: [label]: target
INLINE_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REF_DEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)
HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$", re.MULTILINE)
EXTERNAL = ("http://", "https://", "mailto:")


def strip_code(text: str) -> str:
    """Remove fenced and inline code spans so example snippets aren't linted."""
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    return re.sub(r"`[^`]*`", "", text)


def github_slug(heading: str) -> str:
    """GitHub's heading -> anchor id transformation (close enough for ASCII
    docs: markdown markup dropped, lowercased, punctuation removed, spaces to
    dashes)."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)           # inline code
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links -> their text
    # '*' is always emphasis in a heading; '_' only when it wraps a word —
    # mid-word underscores (snake_case identifiers) survive into the slug.
    text = re.sub(r"\*", "", text)
    text = re.sub(r"\b_([^_]+)_\b", r"\1", text)
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: str, cache: dict) -> set:
    """Anchor ids available in a markdown file (headings, deduped GitHub-style)."""
    if path in cache:
        return cache[path]
    anchors, counts = set(), {}
    try:
        text = open(path, encoding="utf-8").read()
    except OSError:
        cache[path] = anchors
        return anchors
    # Fenced code can contain '#' lines that are not headings.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    for match in HEADING.finditer(text):
        slug = github_slug(match.group(2))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        anchors.add(slug if n == 0 else f"{slug}-{n}")
    cache[path] = anchors
    return anchors


def md_files(root: str):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if not d.startswith(".") and d != "build"
                       and not d.startswith("build-")]
        for name in filenames:
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def main() -> int:
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else ".")
    failures = []
    checked = anchors_checked = 0
    anchor_cache = {}
    for path in sorted(md_files(root)):
        text = strip_code(open(path, encoding="utf-8").read())
        targets = INLINE_LINK.findall(text) + REF_DEF.findall(text)
        for target in targets:
            if target.startswith(EXTERNAL):
                continue
            rel = os.path.relpath(path, root)
            file_part, _, fragment = target.partition("#")
            if file_part:
                checked += 1
                resolved = os.path.normpath(
                    os.path.join(os.path.dirname(path), file_part))
                if not os.path.exists(resolved):
                    failures.append(f"{rel}: broken link -> {target}")
                    continue
            else:
                resolved = path  # same-file fragment
            if fragment:
                if not resolved.endswith(".md"):
                    continue  # fragment into a non-markdown target: not ours
                anchors_checked += 1
                if fragment.lower() not in anchors_of(resolved, anchor_cache):
                    failures.append(
                        f"{rel}: broken anchor -> {target} (no heading "
                        f"'#{fragment}' in {os.path.relpath(resolved, root)})")
    for failure in failures:
        print(failure, file=sys.stderr)
    print(f"checked {checked} relative link(s) and {anchors_checked} anchor(s); "
          f"{len(failures)} broken")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
