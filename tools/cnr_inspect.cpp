// cnr_inspect — inspect and maintain a Check-N-Run checkpoint store on disk.
//
// Usage:
//   cnr_inspect <store-dir>                       list jobs and checkpoints
//   cnr_inspect <store-dir> jobs                  multi-job overview: per-job
//       chains and store occupancy (live / stale / orphaned bytes — the same
//       survey kernel the service's startup reconciliation seeds stats from)
//   cnr_inspect <store-dir> gc [--dry-run] [--keep N] [--orphans]
//       garbage-collect the whole store with the service's GC kernel: delete
//       every checkpoint not on one of the `N` newest lineages per job
//       (default 1) and, with --orphans, every unreferenced object. --dry-run
//       reports what would be freed without deleting anything. Only run the
//       deleting forms on a store with no active writer.
//   cnr_inspect <store-dir> <job>                 describe a job's checkpoints
//   cnr_inspect <store-dir> <job> shards          coordinated-cut view of a
//       sharded job: each cut's shard -> sub-checkpoint map, the newest
//       (restorable) cut, and sub-checkpoints newer than it (in flight or
//       torn-cut leftovers — a torn cut never appears as a cut, its COORD
//       object was never written)
//   cnr_inspect <store-dir> <job> <ckpt-id>       dump one manifest in detail
//   cnr_inspect <store-dir> <job> restore [id]    restore drill: run the
//       staged restore pipeline (fetch → decode, no model) over the chain of
//       checkpoint `id` (default: newest) and print per-stage timings
//   cnr_inspect <store-dir> <job> scrub [id]
//       integrity scrub: cross-check every chunk's CRC, decoded row counts,
//       and stored sizes against the manifests, plus the dense blob, without
//       applying rows — bit-rot detection before a real failure needs the
//       chain. Runs the parallel scrub kernel (the service's background
//       self-scrub uses the same one). Exits 1 if the chain is damaged.
//       (`restore [id] --scrub` is the older spelling of the same check.)
//   cnr_inspect <near-dir> tiers <far-dir>        tiered write-back view
//       (storage::TieredStore): per-tier occupancy, dirty drain backlog
//       (near-tier objects whose replication to the far tier has not
//       finished), far-tier holes/extra objects, and the read-path hit
//       counters persisted by the last clean shutdown. The occupancy
//       numbers are the same survey the live service's stats() tracks, so
//       stats() == survey == this output is the tier parity invariant.
//   cnr_inspect <store-dir> <job> dlog [base-id]  per-iteration delta logs
//       (core/delta_log.h): with no id, one line per base checkpoint that has
//       a delta stream; with one, every segment of that base's log — seq,
//       cover/raw, iteration range, rows, bytes, and a CRC/placement verdict
//       — plus the replay picture: where recovery would start (the newest
//       valid cover), the last sealed iteration it can reach, and the torn
//       or out-of-place tail objects truncation would drop. Exits 1 if the
//       log is damaged.
//
// Works on any directory written through storage::FileStore (see
// examples/durable_checkpoints.cpp). Read-only except `gc` without
// --dry-run. (A job literally named "jobs", "gc", or "tiers" is shadowed by
// the subcommand; use the per-checkpoint forms for it.)
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/delta_log.h"
#include "core/maintenance.h"
#include "core/pipeline/restore.h"
#include "core/recovery.h"
#include "quant/kernels.h"
#include "storage/file_store.h"
#include "storage/manifest.h"
#include "storage/tiered_store.h"
#include "util/crc32.h"

using namespace cnr;

namespace {

const char* KindName(storage::CheckpointKind kind) {
  switch (kind) {
    case storage::CheckpointKind::kFull: return "full";
    case storage::CheckpointKind::kIncremental: return "incremental";
    case storage::CheckpointKind::kCoordinated: return "coordinated";
  }
  return "unknown";
}

double Ms(std::uint64_t us) { return static_cast<double>(us) / 1000.0; }

// bytes / stage-cpu-time in MB/s; 0 when the stage recorded no time.
double MBps(std::uint64_t bytes, std::uint64_t us) {
  return us > 0 ? static_cast<double>(bytes) / static_cast<double>(us) : 0.0;
}

bool HasTimings(const storage::StageTimings& t) {
  return t.snapshot_us | t.plan_us | t.encode_us | t.store_us | t.commit_us |
         t.encode_queue_us | t.store_queue_us;
}

// Per-stage write-path breakdown recorded by the checkpoint pipeline
// (manifest format v2; older manifests have no timings).
void PrintTimings(const storage::StageTimings& t, const char* indent) {
  if (!HasTimings(t)) {
    std::printf("%sstage timings:   (not recorded; pre-v2 manifest)\n", indent);
    return;
  }
  std::printf("%sstage timings:   snapshot %.2f ms | plan %.2f ms | encode %.2f ms"
              " | store %.2f ms | commit %.2f ms\n",
              indent, Ms(t.snapshot_us), Ms(t.plan_us), Ms(t.encode_us), Ms(t.store_us),
              Ms(t.commit_us));
  std::printf("%squeue waits:     encode %.2f ms | store %.2f ms\n", indent,
              Ms(t.encode_queue_us), Ms(t.store_queue_us));
}

// Applier for the restore drill: exercises the full fetch/decode path of the
// staged restore pipeline without needing a model to apply into (this tool
// does not know the model's shape configuration).
struct DrillApplier : core::pipeline::ChunkApplier {
  std::uint64_t dense_bytes = 0;
  void ApplyChunk(const core::pipeline::DecodedChunk&) override {}
  void ApplyDense(std::span<const std::uint8_t> dense_blob) override {
    dense_bytes = dense_blob.size();
  }
};

// Per-stage read-path breakdown of a live restore (core/pipeline/restore.h).
void PrintRestoreTimings(const core::pipeline::RestoreTimings& t, const char* indent) {
  std::printf("%sstage walls:     resolve %.2f ms | fetch %.2f ms | decode %.2f ms"
              " | apply %.2f ms\n",
              indent, Ms(t.resolve_us), Ms(t.fetch_us), Ms(t.decode_us), Ms(t.apply_us));
  std::printf("%squeue waits:     fetch %.2f ms | decode %.2f ms | apply %.2f ms\n", indent,
              Ms(t.fetch_queue_us), Ms(t.decode_queue_us), Ms(t.apply_queue_us));
  const double sum = Ms(t.StageSumUs());
  const double wall = Ms(t.restore_wall_us);
  std::printf("%srestore wall:    %.2f ms (stage sum %.2f ms, overlap %.2fx)\n", indent, wall,
              sum, wall > 0.0 ? sum / wall : 0.0);
}

// What the stage runtime's feedback controller decided: per-stage worker
// allotment and occupancy at the end of a run (core/pipeline/executor.h,
// docs/TUNING.md).
void PrintStageRuntime(const core::pipeline::ExecutorSnapshot& snap, const char* indent) {
  if (snap.stages.empty()) return;
  std::printf("%sstage runtime:   %zu pool worker(s), auto-tune %s, %llu rebalance(s)\n",
              indent, snap.workers, snap.auto_tune ? "on" : "off",
              static_cast<unsigned long long>(snap.rebalances));
  for (const auto& s : snap.stages) {
    std::printf("%s  %-15s %zu worker(s) allotted | %llu unit(s) drained | busy %.2f ms\n",
                indent, s.name.c_str(), s.allotted,
                static_cast<unsigned long long>(s.drained), Ms(s.busy_us));
  }
}

// scrub: integrity pass over the chain, no rows applied. Runs the parallel
// kernel (fetch/decode workers) — the same one the service's background
// self-scrub schedules. Returns the process exit code so damage is
// scriptable.
int ScrubDrill(storage::ObjectStore& store, const std::string& job, std::uint64_t id) {
  const auto report = core::pipeline::ScrubChainParallel(store, job, id);
  std::printf("scrub: checkpoint %llu of job %s\n", static_cast<unsigned long long>(id),
              job.c_str());
  std::printf("  chain:          ");
  for (const auto cid : report.chain) {
    std::printf(" %llu", static_cast<unsigned long long>(cid));
  }
  std::printf("  (%zu checkpoint(s))\n", report.chain.size());
  std::printf("  chunks checked:  %zu (%llu rows, %llu bytes)\n", report.chunks_checked,
              static_cast<unsigned long long>(report.rows_checked),
              static_cast<unsigned long long>(report.bytes_checked));
  if (report.clean()) {
    std::printf("  result:          clean — every CRC, row count, and size matches\n");
    return 0;
  }
  std::printf("  result:          %zu issue(s)\n", report.issues.size());
  for (const auto& issue : report.issues) {
    std::printf("    %s: %s\n", issue.key.empty() ? "(chain)" : issue.key.c_str(),
                issue.what.c_str());
  }
  return 1;
}

void RestoreDrill(storage::ObjectStore& store, const std::string& job,
                  std::uint64_t id) {
  DrillApplier applier;
  const auto out = core::pipeline::RunRestorePipeline(store, job, id, applier);
  std::printf("restore drill: checkpoint %llu of job %s\n",
              static_cast<unsigned long long>(id), job.c_str());
  std::printf("  chain:          ");
  for (const auto cid : out.chain) std::printf(" %llu", static_cast<unsigned long long>(cid));
  std::printf("  (%zu checkpoint(s))\n", out.chain.size());
  std::printf("  rows decoded:    %llu\n", static_cast<unsigned long long>(out.rows_applied));
  std::printf("  bytes read:      %llu (dense %llu)\n",
              static_cast<unsigned long long>(out.bytes_read),
              static_cast<unsigned long long>(applier.dense_bytes));
  PrintRestoreTimings(out.timings, "  ");
  if (out.timings.decode_us > 0) {
    std::printf("  decode speed:    %.1f MB/s (bytes read / decode cpu)\n",
                MBps(out.bytes_read, out.timings.decode_us));
  }
  PrintStageRuntime(out.stages, "  ");
}

std::set<std::uint64_t> ListCheckpoints(storage::ObjectStore& store, const std::string& job) {
  std::set<std::uint64_t> ids;
  for (const auto& key : store.List(storage::Manifest::JobPrefix(job) + "ckpt/")) {
    if (key.ends_with("MANIFEST")) {
      const auto tail = key.substr(0, key.size() - 9);
      ids.insert(std::stoull(tail.substr(tail.find_last_of('/') + 1)));
    }
  }
  return ids;
}

void DescribeJob(storage::ObjectStore& store, const std::string& job) {
  const auto ids = ListCheckpoints(store, job);
  if (ids.empty()) {
    std::printf("job %s: no checkpoints\n", job.c_str());
    return;
  }
  std::printf("job %s: %zu checkpoint(s)\n", job.c_str(), ids.size());
  std::printf("%8s %-12s %8s %10s %12s %10s %8s %10s %10s\n", "id", "kind", "parent",
              "batches", "bytes", "chunks", "quant", "stall(ms)", "write(ms)");
  for (const auto id : ids) {
    const auto m = core::LoadManifest(store, job, id);
    // Write-path cpu/link time: the background stages, summed (the trainer
    // only ever pays the snapshot stall).
    const double write_ms =
        Ms(m.timings.plan_us + m.timings.encode_us + m.timings.store_us + m.timings.commit_us);
    std::printf("%8llu %-12s %8llu %10llu %12llu %10zu %5db/%s %10.2f %10.2f\n",
                static_cast<unsigned long long>(m.checkpoint_id), KindName(m.kind),
                static_cast<unsigned long long>(m.parent_id),
                static_cast<unsigned long long>(m.batches_trained),
                static_cast<unsigned long long>(m.TotalBytes()), m.chunks.size(),
                m.quant.method == quant::Method::kNone ? 32 : m.quant.bits,
                quant::MethodName(m.quant.method).c_str(), Ms(m.timings.snapshot_us),
                write_ms);
  }
  const auto latest = *core::LatestCheckpointId(store, job);
  const auto chain = core::ResolveChain(store, job, latest);
  std::printf("recovery chain for latest (%llu):", static_cast<unsigned long long>(latest));
  for (const auto id : chain) std::printf(" %llu", static_cast<unsigned long long>(id));
  std::printf("\n");
}

// Multi-job overview: the offline twin of CheckpointService::stats(), built
// on the same survey kernel (core::SurveyJob) the service's startup
// reconciliation seeds its accounting from — so a reconciled service's
// per-job `store_bytes` and this table agree byte for byte (the
// occupancy-parity invariant, docs/MANIFEST_FORMAT.md).
void JobsOverview(storage::ObjectStore& store) {
  const auto jobs = core::ListStoreJobs(store);
  if (jobs.empty()) {
    std::printf("no jobs\n");
    return;
  }
  std::vector<core::JobSurvey> surveys;
  std::uint64_t total_bytes = 0;
  for (const auto& job : jobs) {
    surveys.push_back(core::SurveyJob(store, job));
    total_bytes += surveys.back().total_bytes();
  }
  std::printf("%zu job(s), %llu bytes occupied\n", surveys.size(),
              static_cast<unsigned long long>(total_bytes));
  std::printf("%-16s %8s %8s %8s %14s %14s %14s %7s\n", "job", "ckpts", "latest", "chain",
              "bytes", "stale", "orphaned", "share");
  for (const auto& s : surveys) {
    std::printf("%-16s %8zu %8llu %8zu %14llu %14llu %14llu %6.1f%%\n", s.job.c_str(),
                s.ids.size(),
                static_cast<unsigned long long>(s.ids.empty() ? 0 : s.ids.back()),
                s.live_chain.size(), static_cast<unsigned long long>(s.total_bytes()),
                static_cast<unsigned long long>(s.stale_bytes),
                static_cast<unsigned long long>(s.orphan_bytes),
                total_bytes > 0 ? 100.0 * static_cast<double>(s.total_bytes()) /
                                      static_cast<double>(total_bytes)
                                : 0.0);
  }
  for (const auto& s : surveys) {
    if (s.live_chain.empty()) continue;
    std::printf("recovery chain %s:", s.job.c_str());
    for (const auto id : s.live_chain) {
      std::printf(" %llu", static_cast<unsigned long long>(id));
    }
    if (!s.stale.empty()) {
      std::printf("   (stale:");
      for (const auto id : s.stale) std::printf(" %llu", static_cast<unsigned long long>(id));
      std::printf(")");
    }
    std::printf("\n");
  }
}

// gc: store-wide garbage collection through the service's kernel
// (core::GcStore). Dry-run prints the same report without deleting.
int GcCommand(storage::ObjectStore& store, const core::GcOptions& options) {
  const auto report = core::GcStore(store, options);
  std::printf("gc%s: keep %zu lineage(s) per job%s\n", report.dry_run ? " (dry run)" : "",
              std::max<std::size_t>(options.keep_lineages, 1),
              options.remove_orphans ? ", removing orphans" : "");
  if (report.jobs.empty()) {
    std::printf("  nothing to collect — every checkpoint is on a kept lineage\n");
    return 0;
  }
  for (const auto& jr : report.jobs) {
    std::printf("  job %s: %zu stale checkpoint(s)%s, %llu bytes", jr.job.c_str(),
                jr.evicted.size(), report.dry_run ? " would be evicted" : " evicted",
                static_cast<unsigned long long>(jr.bytes_freed));
    if (jr.orphans_removed > 0) {
      std::printf("; %zu orphan(s), %llu bytes", jr.orphans_removed,
                  static_cast<unsigned long long>(jr.orphan_bytes));
    }
    std::printf("\n");
    if (!jr.evicted.empty()) {
      std::printf("    checkpoints:");
      for (const auto id : jr.evicted) {
        std::printf(" %llu", static_cast<unsigned long long>(id));
      }
      std::printf("\n");
    }
  }
  std::printf("  total: %llu bytes %s\n",
              static_cast<unsigned long long>(report.bytes_freed),
              report.dry_run ? "reclaimable" : "reclaimed");
  return 0;
}

// shards: coordinated-cut view of a sharded job (core/sharded_checkpoint.h).
// Shows each cut's shard -> sub-checkpoint map, which cut recovery would
// restore from, and the sub-checkpoints newer than the newest cut (the next
// cut in flight, or a torn cut's leftovers — a torn cut is never listed as a
// cut because its COORD object was never written).
int ShardsCommand(storage::ObjectStore& store, const std::string& job) {
  const auto survey = core::SurveyJob(store, job, /*measure_orphans=*/false);
  if (survey.cuts.empty()) {
    std::printf("job %s: no coordinated cuts%s\n", job.c_str(),
                survey.ids.empty() ? "" : " (unsharded job? try the plain forms)");
    return survey.ids.empty() ? 0 : 1;
  }
  std::printf("job %s: %zu coordinated cut(s), %zu sub-checkpoint(s)\n", job.c_str(),
              survey.cuts.size(), survey.ids.size());
  std::uint64_t newest_max_id = 0;
  for (std::size_t i = 0; i < survey.cuts.size(); ++i) {
    const auto& cut = survey.cuts[i];
    const bool newest = i + 1 == survey.cuts.size();
    std::printf("  cut %llu%s: %zu shard(s), dense %llu bytes\n",
                static_cast<unsigned long long>(cut.epoch), newest ? " (newest)" : "",
                cut.shard_map.size(), static_cast<unsigned long long>(cut.dense_bytes));
    for (const auto& e : cut.shard_map) {
      std::uint64_t bytes = 0;
      const auto it = survey.bytes_by_checkpoint.find(e.checkpoint_id);
      if (it != survey.bytes_by_checkpoint.end()) bytes = it->second;
      std::printf("    shard %2u -> checkpoint %llu (%llu bytes)\n", e.shard_id,
                  static_cast<unsigned long long>(e.checkpoint_id),
                  static_cast<unsigned long long>(bytes));
      if (newest) newest_max_id = std::max(newest_max_id, e.checkpoint_id);
    }
  }
  std::vector<std::uint64_t> pending;
  for (const auto id : survey.ids) {
    if (id > newest_max_id) pending.push_back(id);
  }
  if (!pending.empty()) {
    std::printf("  newer than newest cut (in flight or torn-cut leftovers):");
    for (const auto id : pending) std::printf(" %llu", static_cast<unsigned long long>(id));
    std::printf("\n");
  }
  if (!survey.stale.empty()) {
    std::printf("  stale (older cuts' exclusive chains / debris):");
    for (const auto id : survey.stale) {
      std::printf(" %llu", static_cast<unsigned long long>(id));
    }
    std::printf("\n");
  }
  std::printf("  bytes: %llu live | %llu stale\n",
              static_cast<unsigned long long>(survey.live_bytes),
              static_cast<unsigned long long>(survey.stale_bytes));
  return 0;
}

// dlog: per-iteration delta-log view of a job (core/delta_log.h). Every
// segment is fetched and CRC/placement-verified with the same parse the
// scrub plane runs; the replay summary mirrors ReplayDeltaLog's choice —
// newest valid cover as the floor, then the contiguous run of valid raw
// segments above it — without needing a model to apply into.
int DlogCommand(storage::ObjectStore& store, const std::string& job,
                std::uint64_t base, bool have_base) {
  if (!have_base) {
    const auto bases = core::ListDeltaLogBases(store, job);
    if (bases.empty()) {
      std::printf("job %s: no delta logs\n", job.c_str());
      return 0;
    }
    std::printf("job %s: %zu delta log(s)\n", job.c_str(), bases.size());
    std::printf("%12s %10s %8s %12s %14s %8s\n", "base-ckpt", "segments", "covers",
                "last-iter", "bytes", "status");
    int rc = 0;
    for (const auto b : bases) {
      const auto infos = core::InspectDeltaLog(store, job, b);
      std::size_t covers = 0, damaged = 0;
      std::uint64_t bytes = 0, last_iter = 0;
      for (const auto& info : infos) {
        bytes += info.bytes;
        if (info.compacted) ++covers;
        if (!info.valid) ++damaged;
        if (info.valid) last_iter = std::max(last_iter, info.header.last_iteration);
      }
      if (damaged > 0) rc = 1;
      std::printf("%12llu %10zu %8zu %12llu %14llu %8s\n",
                  static_cast<unsigned long long>(b), infos.size(), covers,
                  static_cast<unsigned long long>(last_iter),
                  static_cast<unsigned long long>(bytes), damaged == 0 ? "ok" : "DAMAGED");
    }
    return rc;
  }

  const auto infos = core::InspectDeltaLog(store, job, base);
  if (infos.empty()) {
    std::printf("job %s: checkpoint %llu has no delta log\n", job.c_str(),
                static_cast<unsigned long long>(base));
    return 0;
  }
  std::printf("delta log of checkpoint %llu, job %s: %zu object(s)\n",
              static_cast<unsigned long long>(base), job.c_str(), infos.size());
  std::printf("%8s %-6s %12s %12s %10s %12s  %s\n", "seq", "kind", "first-iter",
              "last-iter", "rows", "bytes", "verdict");
  for (const auto& info : infos) {
    std::printf("%8llu %-6s %12llu %12llu %10llu %12llu  %s\n",
                static_cast<unsigned long long>(info.seq),
                info.compacted ? "cover" : "raw",
                static_cast<unsigned long long>(info.header.first_iteration),
                static_cast<unsigned long long>(info.header.last_iteration),
                static_cast<unsigned long long>(info.rows),
                static_cast<unsigned long long>(info.bytes),
                info.valid ? "sealed" : info.issue.c_str());
  }

  // Replay picture: what ReplayDeltaLog would recover. The newest valid
  // cover is the floor; above it only a contiguous run of valid raw
  // segments counts — the first gap or torn object ends the sealed tail,
  // and everything past it is what `--truncate`-style recovery drops.
  std::uint64_t cover_seq = 0, last_iter = 0;
  bool have_cover = false;
  for (const auto& info : infos) {
    if (info.compacted && info.valid && (!have_cover || info.seq > cover_seq)) {
      cover_seq = info.seq;
      last_iter = info.header.last_iteration;
      have_cover = true;
    }
  }
  std::map<std::uint64_t, const core::DeltaSegmentInfo*> raws;
  for (const auto& info : infos) {
    if (!info.compacted && info.seq > cover_seq) raws[info.seq] = &info;
  }
  std::size_t replayable = have_cover ? 1 : 0;
  std::uint64_t next = cover_seq + 1;
  std::vector<const core::DeltaSegmentInfo*> dropped;
  for (const auto& [seq, info] : raws) {
    if (seq == next && info->valid && dropped.empty()) {
      last_iter = info->header.last_iteration;
      ++replayable;
      ++next;
    } else {
      dropped.push_back(info);
    }
  }
  std::printf("replay: %zu object(s)%s, recovers through iteration %llu\n", replayable,
              have_cover ? " (from cover)" : "", static_cast<unsigned long long>(last_iter));
  for (const auto* info : dropped) {
    std::printf("  beyond the sealed tail (truncation would drop): %s%s%s\n",
                info->key.c_str(), info->valid ? "" : " — ",
                info->valid ? "" : info->issue.c_str());
  }
  return std::all_of(infos.begin(), infos.end(),
                     [](const core::DeltaSegmentInfo& i) { return i.valid; })
             ? 0
             : 1;
}

void DescribeCheckpoint(storage::ObjectStore& store, const std::string& job,
                        std::uint64_t id) {
  const auto m = core::LoadManifest(store, job, id);
  std::printf("checkpoint %llu of job %s\n", static_cast<unsigned long long>(id),
              job.c_str());
  std::printf("  kind:            %s\n", KindName(m.kind));
  if (m.kind == storage::CheckpointKind::kIncremental) {
    std::printf("  parent:          %llu\n", static_cast<unsigned long long>(m.parent_id));
  }
  std::printf("  trainer:         %llu batches / %llu samples\n",
              static_cast<unsigned long long>(m.batches_trained),
              static_cast<unsigned long long>(m.samples_trained));
  std::printf("  quantization:    %s, %d bits (bins=%d ratio=%.2f)\n",
              quant::MethodName(m.quant.method).c_str(), m.quant.bits, m.quant.num_bins,
              m.quant.ratio);
  std::printf("  dense blob:      %llu bytes (%s)\n",
              static_cast<unsigned long long>(m.dense_bytes), m.dense_key.c_str());
  std::printf("  reader state:    %zu bytes\n", m.reader_state.size());
  PrintTimings(m.timings, "  ");
  // Codec throughput: encoded chunk bytes over the stage cpu that produced
  // and shipped them (the production-visible view of the vectorized codec
  // hot path; see bench/codec_hot_path.cpp).
  std::uint64_t chunk_bytes = 0;
  for (const auto& c : m.chunks) chunk_bytes += c.bytes;
  if (m.timings.encode_us > 0 || m.timings.store_us > 0) {
    std::printf("  codec speed:     encode %.1f MB/s | store %.1f MB/s"
                " (chunk bytes / stage cpu; kernels=%s, crc=%s)\n",
                MBps(chunk_bytes, m.timings.encode_us), MBps(chunk_bytes, m.timings.store_us),
                quant::ActiveCodecKernels().name, util::Crc32cImplName());
  }

  // Per (table, shard) chunk breakdown.
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::pair<std::uint64_t, std::uint64_t>>
      per_shard;  // (table,shard) -> (rows, bytes)
  for (const auto& c : m.chunks) {
    auto& [rows, bytes] = per_shard[{c.table_id, c.shard_id}];
    rows += c.num_rows;
    bytes += c.bytes;
  }
  std::printf("  chunks:          %zu across %zu shard(s)\n", m.chunks.size(),
              per_shard.size());
  for (const auto& [key, val] : per_shard) {
    std::printf("    table %u shard %u: %llu rows, %llu bytes\n", key.first, key.second,
                static_cast<unsigned long long>(val.first),
                static_cast<unsigned long long>(val.second));
  }
  std::printf("  total bytes:     %llu\n", static_cast<unsigned long long>(m.TotalBytes()));
}

// `tiers`: offline view of a tiered write-back pair (storage/tiered_store.h).
// The near dir is the store dir argument; the far dir is the operand. Prints
// the same per-tier occupancy arithmetic the live service's stats() tracks.
int TiersCommand(storage::FileStore& near_tier, const std::string& far_dir) {
  storage::FileStore far_tier(far_dir);
  const storage::TierSurvey near_survey = storage::SurveyTier(near_tier);
  const storage::TierSurvey far_survey = storage::SurveyTier(far_tier);

  std::printf("near tier (%s)\n", near_tier.root().string().c_str());
  std::printf("  objects:       %llu\n",
              static_cast<unsigned long long>(near_survey.objects));
  std::printf("  bytes:         %llu\n",
              static_cast<unsigned long long>(near_survey.bytes));
  std::printf("  dirty backlog: %llu object(s), %llu bytes%s\n",
              static_cast<unsigned long long>(near_survey.dirty_objects),
              static_cast<unsigned long long>(near_survey.dirty_bytes),
              near_survey.dirty_objects ? "  <- not yet replicated" : "");
  std::printf("far tier (%s)\n", far_dir.c_str());
  std::printf("  objects:       %llu\n",
              static_cast<unsigned long long>(far_survey.objects));
  std::printf("  bytes:         %llu\n",
              static_cast<unsigned long long>(far_survey.bytes));

  // Cross-tier delta: every near object is either dirty (drain pending) or
  // must have a far copy — anything else is a far-tier hole, the one state
  // the write-back protocol promises never to produce.
  std::set<std::string> far_keys;
  for (auto& key : far_tier.List("")) far_keys.insert(std::move(key));
  std::uint64_t clean_without_far = 0;
  std::set<std::string> dirty;
  const std::string dirty_prefix = storage::TieredStore::kDirtyPrefix;
  for (const auto& marker : near_tier.List(dirty_prefix)) {
    dirty.insert(marker.substr(dirty_prefix.size()));
  }
  for (const auto& key : near_tier.List("")) {
    if (key.starts_with(storage::TieredStore::kMetaPrefix)) continue;
    if (!dirty.contains(key) && !far_keys.contains(key)) ++clean_without_far;
  }
  if (clean_without_far != 0) {
    std::printf("  WARNING: %llu clean near object(s) missing from the far "
                "tier (far-tier hole — should be impossible)\n",
                static_cast<unsigned long long>(clean_without_far));
  }

  // Read-path counters survive only across a clean shutdown (the live
  // numbers are in ServiceStats::tier).
  const auto blob = near_tier.Get(storage::TieredStore::kStatsKey);
  std::optional<storage::TierStats> counters;
  if (blob) counters = storage::DecodeShutdownCounters(*blob);
  if (counters) {
    std::printf("read path (as of last clean shutdown)\n");
    std::printf("  near hits:     %llu (%llu bytes)\n",
                static_cast<unsigned long long>(counters->near_hits),
                static_cast<unsigned long long>(counters->near_bytes_read));
    std::printf("  far hits:      %llu (%llu bytes)\n",
                static_cast<unsigned long long>(counters->far_hits),
                static_cast<unsigned long long>(counters->far_bytes_read));
    std::printf("  misses:        %llu\n",
                static_cast<unsigned long long>(counters->misses));
    std::printf("  near hit ratio: %.3f\n", counters->NearHitRatio());
    std::printf("  drained:       %llu object(s), %llu bytes; %llu failure(s)\n",
                static_cast<unsigned long long>(counters->drained_objects),
                static_cast<unsigned long long>(counters->drained_bytes),
                static_cast<unsigned long long>(counters->drain_failures));
    std::printf("  evicted:       %llu object(s), %llu bytes\n",
                static_cast<unsigned long long>(counters->evicted_objects),
                static_cast<unsigned long long>(counters->evicted_bytes));
  } else {
    std::printf("read path: no shutdown counters (crashed or live writer; "
                "live numbers are in ServiceStats::tier)\n");
  }
  return clean_without_far == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const auto usage = [&] {
    std::fprintf(stderr,
                 "usage: %s <store-dir> [jobs"
                 " | gc [--dry-run] [--keep N] [--orphans]"
                 " | tiers <far-dir>"
                 " | <job> [checkpoint-id | shards | dlog [base-id]"
                 " | scrub [checkpoint-id]"
                 " | restore [checkpoint-id] [--scrub]]]\n",
                 argv[0]);
    return 2;
  };
  if (argc < 2) return usage();
  const std::vector<std::string> args(argv + 2, argv + argc);
  try {
    storage::FileStore store(argv[1]);
    if (args.empty()) {
      const auto jobs = core::ListStoreJobs(store);
      if (jobs.empty()) {
        std::printf("no jobs under %s\n", argv[1]);
        return 0;
      }
      for (const auto& job : jobs) DescribeJob(store, job);
      return 0;
    }
    if (args[0] == "jobs") {
      if (args.size() != 1) return usage();
      JobsOverview(store);
      return 0;
    }
    if (args[0] == "gc") {
      core::GcOptions options;
      for (std::size_t i = 1; i < args.size(); ++i) {
        if (args[i] == "--dry-run") {
          options.dry_run = true;
        } else if (args[i] == "--orphans") {
          options.remove_orphans = true;
        } else if (args[i] == "--keep" && i + 1 < args.size()) {
          options.keep_lineages = std::strtoull(args[++i].c_str(), nullptr, 10);
        } else {
          return usage();
        }
      }
      return GcCommand(store, options);
    }
    if (args[0] == "tiers") {
      if (args.size() != 2) return usage();
      return TiersCommand(store, args[1]);
    }

    const std::string& job = args[0];
    if (args.size() == 1) {
      DescribeJob(store, job);
      return 0;
    }
    if (args[1] == "shards") {
      if (args.size() != 2) return usage();
      return ShardsCommand(store, job);
    }
    if (args[1] == "dlog") {
      if (args.size() > 3) return usage();
      const bool have_base = args.size() == 3;
      const std::uint64_t base =
          have_base ? std::strtoull(args[2].c_str(), nullptr, 10) : 0;
      return DlogCommand(store, job, base, have_base);
    }
    if (args[1] == "scrub" || args[1] == "restore") {
      const bool restore_form = args[1] == "restore";
      bool scrub = !restore_form;
      std::uint64_t id = 0;
      bool have_id = false;
      for (std::size_t i = 2; i < args.size(); ++i) {
        if (restore_form && args[i] == "--scrub") {
          scrub = true;
        } else if (!have_id) {
          id = std::strtoull(args[i].c_str(), nullptr, 10);
          have_id = true;
        } else {
          return usage();
        }
      }
      if (!have_id) {
        const auto latest = core::LatestCheckpointId(store, job);
        if (!latest) {
          std::printf("job %s: no checkpoints\n", job.c_str());
          return 0;
        }
        id = *latest;
      }
      if (scrub) return ScrubDrill(store, job, id);
      RestoreDrill(store, job, id);
      return 0;
    }
    if (args.size() == 2) {
      DescribeCheckpoint(store, job, std::strtoull(args[1].c_str(), nullptr, 10));
      return 0;
    }
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
