// cnr_inspect — inspect a Check-N-Run checkpoint store on disk.
//
// Usage:
//   cnr_inspect <store-dir>                       list jobs and checkpoints
//   cnr_inspect <store-dir> jobs                  multi-job overview: per-job
//       chains and store occupancy (who holds how much of the shared tier)
//   cnr_inspect <store-dir> <job>                 describe a job's checkpoints
//   cnr_inspect <store-dir> <job> <ckpt-id>       dump one manifest in detail
//   cnr_inspect <store-dir> <job> restore [id]    restore drill: run the
//       staged restore pipeline (fetch → decode, no model) over the chain of
//       checkpoint `id` (default: newest) and print per-stage timings
//   cnr_inspect <store-dir> <job> restore [id] --scrub
//       integrity scrub instead of a drill: cross-check every chunk's CRC,
//       decoded row counts, and stored sizes against the manifests, plus the
//       dense blob, without applying rows — bit-rot detection before a real
//       failure needs the chain. Exits 1 if the chain is damaged.
//
// Works on any directory written through storage::FileStore (see
// examples/durable_checkpoints.cpp). Read-only. (A job literally named
// "jobs" is shadowed by the overview subcommand; use the per-checkpoint
// forms for it.)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/pipeline/restore.h"
#include "core/recovery.h"
#include "storage/file_store.h"
#include "storage/manifest.h"

using namespace cnr;

namespace {

const char* KindName(storage::CheckpointKind kind) {
  return kind == storage::CheckpointKind::kFull ? "full" : "incremental";
}

double Ms(std::uint64_t us) { return static_cast<double>(us) / 1000.0; }

bool HasTimings(const storage::StageTimings& t) {
  return t.snapshot_us | t.plan_us | t.encode_us | t.store_us | t.commit_us |
         t.encode_queue_us | t.store_queue_us;
}

// Per-stage write-path breakdown recorded by the checkpoint pipeline
// (manifest format v2; older manifests have no timings).
void PrintTimings(const storage::StageTimings& t, const char* indent) {
  if (!HasTimings(t)) {
    std::printf("%sstage timings:   (not recorded; pre-v2 manifest)\n", indent);
    return;
  }
  std::printf("%sstage timings:   snapshot %.2f ms | plan %.2f ms | encode %.2f ms"
              " | store %.2f ms | commit %.2f ms\n",
              indent, Ms(t.snapshot_us), Ms(t.plan_us), Ms(t.encode_us), Ms(t.store_us),
              Ms(t.commit_us));
  std::printf("%squeue waits:     encode %.2f ms | store %.2f ms\n", indent,
              Ms(t.encode_queue_us), Ms(t.store_queue_us));
}

// Applier for the restore drill: exercises the full fetch/decode path of the
// staged restore pipeline without needing a model to apply into (this tool
// does not know the model's shape configuration).
struct DrillApplier : core::pipeline::ChunkApplier {
  std::uint64_t dense_bytes = 0;
  void ApplyChunk(const core::pipeline::DecodedChunk&) override {}
  void ApplyDense(std::span<const std::uint8_t> dense_blob) override {
    dense_bytes = dense_blob.size();
  }
};

// Per-stage read-path breakdown of a live restore (core/pipeline/restore.h).
void PrintRestoreTimings(const core::pipeline::RestoreTimings& t, const char* indent) {
  std::printf("%sstage walls:     resolve %.2f ms | fetch %.2f ms | decode %.2f ms"
              " | apply %.2f ms\n",
              indent, Ms(t.resolve_us), Ms(t.fetch_us), Ms(t.decode_us), Ms(t.apply_us));
  std::printf("%squeue waits:     fetch %.2f ms | decode %.2f ms | apply %.2f ms\n", indent,
              Ms(t.fetch_queue_us), Ms(t.decode_queue_us), Ms(t.apply_queue_us));
  const double sum = Ms(t.StageSumUs());
  const double wall = Ms(t.restore_wall_us);
  std::printf("%srestore wall:    %.2f ms (stage sum %.2f ms, overlap %.2fx)\n", indent, wall,
              sum, wall > 0.0 ? sum / wall : 0.0);
}

// --scrub: integrity pass over the chain, no rows applied. Returns the
// process exit code so damage is scriptable.
int ScrubDrill(storage::ObjectStore& store, const std::string& job, std::uint64_t id) {
  const auto report = core::pipeline::ScrubChain(store, job, id);
  std::printf("scrub: checkpoint %llu of job %s\n", static_cast<unsigned long long>(id),
              job.c_str());
  std::printf("  chain:          ");
  for (const auto cid : report.chain) {
    std::printf(" %llu", static_cast<unsigned long long>(cid));
  }
  std::printf("  (%zu checkpoint(s))\n", report.chain.size());
  std::printf("  chunks checked:  %zu (%llu rows, %llu bytes)\n", report.chunks_checked,
              static_cast<unsigned long long>(report.rows_checked),
              static_cast<unsigned long long>(report.bytes_checked));
  if (report.clean()) {
    std::printf("  result:          clean — every CRC, row count, and size matches\n");
    return 0;
  }
  std::printf("  result:          %zu issue(s)\n", report.issues.size());
  for (const auto& issue : report.issues) {
    std::printf("    %s: %s\n", issue.key.empty() ? "(chain)" : issue.key.c_str(),
                issue.what.c_str());
  }
  return 1;
}

void RestoreDrill(storage::ObjectStore& store, const std::string& job,
                  std::uint64_t id) {
  DrillApplier applier;
  const auto out = core::pipeline::RunRestorePipeline(store, job, id, applier);
  std::printf("restore drill: checkpoint %llu of job %s\n",
              static_cast<unsigned long long>(id), job.c_str());
  std::printf("  chain:          ");
  for (const auto cid : out.chain) std::printf(" %llu", static_cast<unsigned long long>(cid));
  std::printf("  (%zu checkpoint(s))\n", out.chain.size());
  std::printf("  rows decoded:    %llu\n", static_cast<unsigned long long>(out.rows_applied));
  std::printf("  bytes read:      %llu (dense %llu)\n",
              static_cast<unsigned long long>(out.bytes_read),
              static_cast<unsigned long long>(applier.dense_bytes));
  PrintRestoreTimings(out.timings, "  ");
}

std::set<std::string> ListJobs(storage::ObjectStore& store) {
  std::set<std::string> jobs;
  for (const auto& key : store.List("jobs/")) {
    const auto rest = key.substr(5);
    const auto slash = rest.find('/');
    if (slash != std::string::npos) jobs.insert(rest.substr(0, slash));
  }
  return jobs;
}

std::set<std::uint64_t> ListCheckpoints(storage::ObjectStore& store, const std::string& job) {
  std::set<std::uint64_t> ids;
  for (const auto& key : store.List(storage::Manifest::JobPrefix(job) + "ckpt/")) {
    if (key.ends_with("MANIFEST")) {
      const auto tail = key.substr(0, key.size() - 9);
      ids.insert(std::stoull(tail.substr(tail.find_last_of('/') + 1)));
    }
  }
  return ids;
}

void DescribeJob(storage::ObjectStore& store, const std::string& job) {
  const auto ids = ListCheckpoints(store, job);
  if (ids.empty()) {
    std::printf("job %s: no checkpoints\n", job.c_str());
    return;
  }
  std::printf("job %s: %zu checkpoint(s)\n", job.c_str(), ids.size());
  std::printf("%8s %-12s %8s %10s %12s %10s %8s %10s %10s\n", "id", "kind", "parent",
              "batches", "bytes", "chunks", "quant", "stall(ms)", "write(ms)");
  for (const auto id : ids) {
    const auto m = core::LoadManifest(store, job, id);
    // Write-path cpu/link time: the background stages, summed (the trainer
    // only ever pays the snapshot stall).
    const double write_ms =
        Ms(m.timings.plan_us + m.timings.encode_us + m.timings.store_us + m.timings.commit_us);
    std::printf("%8llu %-12s %8llu %10llu %12llu %10zu %5db/%s %10.2f %10.2f\n",
                static_cast<unsigned long long>(m.checkpoint_id), KindName(m.kind),
                static_cast<unsigned long long>(m.parent_id),
                static_cast<unsigned long long>(m.batches_trained),
                static_cast<unsigned long long>(m.TotalBytes()), m.chunks.size(),
                m.quant.method == quant::Method::kNone ? 32 : m.quant.bits,
                quant::MethodName(m.quant.method).c_str(), Ms(m.timings.snapshot_us),
                write_ms);
  }
  const auto latest = *core::LatestCheckpointId(store, job);
  const auto chain = core::ResolveChain(store, job, latest);
  std::printf("recovery chain for latest (%llu):", static_cast<unsigned long long>(latest));
  for (const auto id : chain) std::printf(" %llu", static_cast<unsigned long long>(id));
  std::printf("\n");
}

// Multi-job overview: the offline twin of CheckpointService::stats(). Live
// occupancy is reconstructed from the manifests still present (GC already
// removed dead lineages), so it works on any directory without the service.
void JobsOverview(storage::ObjectStore& store) {
  const auto jobs = ListJobs(store);
  if (jobs.empty()) {
    std::printf("no jobs\n");
    return;
  }
  struct Row {
    std::string job;
    std::size_t checkpoints = 0;
    std::uint64_t latest = 0;
    std::size_t chain_len = 0;
    std::uint64_t bytes = 0;
  };
  std::vector<Row> rows;
  std::uint64_t total_bytes = 0;
  for (const auto& job : jobs) {
    Row row;
    row.job = job;
    for (const auto id : ListCheckpoints(store, job)) {
      ++row.checkpoints;
      row.bytes += core::LoadManifest(store, job, id).TotalBytes();
    }
    if (const auto latest = core::LatestCheckpointId(store, job)) {
      row.latest = *latest;
      row.chain_len = core::ResolveChain(store, job, *latest).size();
    }
    total_bytes += row.bytes;
    rows.push_back(std::move(row));
  }
  std::printf("%zu job(s), %llu bytes occupied\n", rows.size(),
              static_cast<unsigned long long>(total_bytes));
  std::printf("%-16s %8s %8s %8s %14s %7s\n", "job", "ckpts", "latest", "chain", "bytes",
              "share");
  for (const auto& row : rows) {
    std::printf("%-16s %8zu %8llu %8zu %14llu %6.1f%%\n", row.job.c_str(), row.checkpoints,
                static_cast<unsigned long long>(row.latest), row.chain_len,
                static_cast<unsigned long long>(row.bytes),
                total_bytes > 0 ? 100.0 * static_cast<double>(row.bytes) /
                                      static_cast<double>(total_bytes)
                                : 0.0);
  }
  for (const auto& row : rows) {
    if (row.checkpoints == 0) continue;
    const auto chain = core::ResolveChain(store, row.job, row.latest);
    std::printf("recovery chain %s:", row.job.c_str());
    for (const auto id : chain) std::printf(" %llu", static_cast<unsigned long long>(id));
    std::printf("\n");
  }
}

void DescribeCheckpoint(storage::ObjectStore& store, const std::string& job,
                        std::uint64_t id) {
  const auto m = core::LoadManifest(store, job, id);
  std::printf("checkpoint %llu of job %s\n", static_cast<unsigned long long>(id),
              job.c_str());
  std::printf("  kind:            %s\n", KindName(m.kind));
  if (m.kind == storage::CheckpointKind::kIncremental) {
    std::printf("  parent:          %llu\n", static_cast<unsigned long long>(m.parent_id));
  }
  std::printf("  trainer:         %llu batches / %llu samples\n",
              static_cast<unsigned long long>(m.batches_trained),
              static_cast<unsigned long long>(m.samples_trained));
  std::printf("  quantization:    %s, %d bits (bins=%d ratio=%.2f)\n",
              quant::MethodName(m.quant.method).c_str(), m.quant.bits, m.quant.num_bins,
              m.quant.ratio);
  std::printf("  dense blob:      %llu bytes (%s)\n",
              static_cast<unsigned long long>(m.dense_bytes), m.dense_key.c_str());
  std::printf("  reader state:    %zu bytes\n", m.reader_state.size());
  PrintTimings(m.timings, "  ");

  // Per (table, shard) chunk breakdown.
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::pair<std::uint64_t, std::uint64_t>>
      per_shard;  // (table,shard) -> (rows, bytes)
  for (const auto& c : m.chunks) {
    auto& [rows, bytes] = per_shard[{c.table_id, c.shard_id}];
    rows += c.num_rows;
    bytes += c.bytes;
  }
  std::printf("  chunks:          %zu across %zu shard(s)\n", m.chunks.size(),
              per_shard.size());
  for (const auto& [key, val] : per_shard) {
    std::printf("    table %u shard %u: %llu rows, %llu bytes\n", key.first, key.second,
                static_cast<unsigned long long>(val.first),
                static_cast<unsigned long long>(val.second));
  }
  std::printf("  total bytes:     %llu\n", static_cast<unsigned long long>(m.TotalBytes()));
}

}  // namespace

int main(int argc, char** argv) {
  const auto usage = [&] {
    std::fprintf(stderr,
                 "usage: %s <store-dir> [jobs | <job> "
                 "[checkpoint-id | restore [checkpoint-id] [--scrub]]]\n",
                 argv[0]);
    return 2;
  };
  if (argc < 2) return usage();
  // Peel a trailing --scrub off the restore form.
  bool scrub = false;
  if (argc >= 5 && std::strcmp(argv[argc - 1], "--scrub") == 0 &&
      std::strcmp(argv[3], "restore") == 0) {
    scrub = true;
    --argc;
  }
  if (argc > 5 || (argc == 5 && std::strcmp(argv[3], "restore") != 0)) return usage();
  try {
    storage::FileStore store(argv[1]);
    if (argc == 2) {
      const auto jobs = ListJobs(store);
      if (jobs.empty()) {
        std::printf("no jobs under %s\n", argv[1]);
        return 0;
      }
      for (const auto& job : jobs) DescribeJob(store, job);
    } else if (argc == 3 && std::strcmp(argv[2], "jobs") == 0) {
      JobsOverview(store);
    } else if (argc == 3) {
      DescribeJob(store, argv[2]);
    } else if (std::strcmp(argv[3], "restore") == 0) {
      std::uint64_t id;
      if (argc == 5) {
        id = std::strtoull(argv[4], nullptr, 10);
      } else {
        const auto latest = core::LatestCheckpointId(store, argv[2]);
        if (!latest) {
          std::printf("job %s: no checkpoints\n", argv[2]);
          return 0;
        }
        id = *latest;
      }
      if (scrub) return ScrubDrill(store, argv[2], id);
      RestoreDrill(store, argv[2], id);
    } else {
      DescribeCheckpoint(store, argv[2], std::strtoull(argv[3], nullptr, 10));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
